//! X-propagation reset analysis.
//!
//! SLMs have no notion of unknown state, so "the SLM and RTL diverge until
//! reset completes" is a standing §3.2 hazard: any register the RTL does
//! not actually flush stays `X` in a real 4-state simulator while the SLM
//! confidently computes numbers. [`reset_coverage`] simulates the design
//! with all registers starting unknown ([`Xv`]) and known inputs, and
//! reports when (whether) every register and output becomes fully known —
//! i.e. from which cycle onward the SLM comparison is meaningful.
//!
//! Propagation is *pessimistic but exact-when-known*: a node whose operands
//! are all fully known is computed precisely; bitwise ops, muxes and
//! additions use [`Xv`]'s dominance rules; everything else poisons to X.

use dfv_bits::{Bv, Xv};

use crate::check::check_module;
use crate::ir::{BinOp, Module, Node, UnOp};
use crate::sim::{eval_bin, eval_un};
use crate::RtlError;

/// The result of a reset-coverage analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XpropReport {
    /// The first cycle (counting from 0) at the *start* of which every
    /// register was fully known, or `None` if the bound was reached first.
    pub registers_known_after: Option<u32>,
    /// The first cycle during which every output was fully known.
    pub outputs_known_after: Option<u32>,
    /// Registers still carrying X bits when the analysis stopped.
    pub unknown_regs: Vec<String>,
    /// How many cycles were simulated.
    pub cycles_run: u32,
}

impl XpropReport {
    /// Whether the design provably flushes all unknown state within the
    /// analyzed bound.
    pub fn flushes(&self) -> bool {
        self.registers_known_after.is_some()
    }
}

fn eval_node_x(node: &Node, vals: &[Xv], regs: &[Xv], mem_read: &[Vec<Xv>]) -> Xv {
    // Fully-known operands: compute exactly through the 2-state evaluator.
    let all_known = |ids: &[&Xv]| ids.iter().all(|x| x.is_fully_known());
    match node {
        Node::Input(_) | Node::Const(_) => unreachable!("handled by caller"),
        Node::RegQ(r) => regs[r.index()].clone(),
        Node::MemReadData(m, p) => mem_read[m.index()][*p].clone(),
        Node::InstOut(..) => unreachable!("flat module"),
        Node::Un(op, a) => {
            let av = &vals[a.index()];
            if let Some(b) = av.try_to_bv() {
                Xv::from_bv(&eval_un(*op, &b))
            } else {
                match op {
                    UnOp::Not => av.not(),
                    // Reductions and negation of partially-known values:
                    // pessimistic (a 1-bit or full-width X).
                    UnOp::RedAnd | UnOp::RedOr | UnOp::RedXor => Xv::unknown(1),
                    UnOp::Neg => Xv::unknown(av.width()),
                }
            }
        }
        Node::Bin(op, a, b) => {
            let (av, bv) = (&vals[a.index()], &vals[b.index()]);
            if all_known(&[av, bv]) {
                let (ab, bb) = (
                    av.try_to_bv().expect("known"),
                    bv.try_to_bv().expect("known"),
                );
                return Xv::from_bv(&eval_bin(*op, &ab, &bb));
            }
            match op {
                BinOp::And => av.and(bv),
                BinOp::Or => av.or(bv),
                BinOp::Xor => av.xor(bv),
                BinOp::Add => av.add(bv),
                // Comparisons of partially known values: 1-bit X.
                BinOp::Eq | BinOp::Ne | BinOp::ULt | BinOp::ULe | BinOp::SLt | BinOp::SLe => {
                    Xv::unknown(1)
                }
                // Everything else poisons at full width.
                _ => Xv::unknown(result_width(op, av)),
            }
        }
        Node::Mux { sel, t, f } => Xv::mux(&vals[sel.index()], &vals[t.index()], &vals[f.index()]),
        Node::Slice { src, hi, lo } => {
            let s = &vals[src.index()];
            Xv::with_mask(
                &s.value_bits().slice(*hi, *lo),
                &s.known_mask().slice(*hi, *lo),
            )
        }
        Node::Concat(a, b) => {
            let (av, bv) = (&vals[a.index()], &vals[b.index()]);
            Xv::with_mask(
                &av.value_bits().concat(&bv.value_bits()),
                &av.known_mask().concat(&bv.known_mask()),
            )
        }
        Node::Zext(a, w) => {
            let av = &vals[a.index()];
            // Extension bits are known zeros.
            Xv::with_mask(
                &av.value_bits().zext(*w),
                &av.known_mask().zext(*w).or(&Bv::ones(*w).shl(av.width())),
            )
        }
        Node::Sext(a, w) => {
            let av = &vals[a.index()];
            // The replicated sign bit is known only if the source MSB is.
            let src_w = av.width();
            let msb_known = av.known_mask().bit(src_w - 1);
            let known = if msb_known {
                av.known_mask().zext(*w).or(&Bv::ones(*w).shl(src_w))
            } else {
                av.known_mask().zext(*w)
            };
            Xv::with_mask(&av.value_bits().sext(*w), &known)
        }
    }
}

/// Simulates `module` for up to `max_cycles` with every register starting
/// **unknown** and all inputs held at the given known values, reporting when
/// unknowns flush.
///
/// # Errors
///
/// Returns [`RtlError`] if the module fails checks or is not flat.
pub fn reset_coverage(
    module: &Module,
    inputs: &[(&str, Bv)],
    max_cycles: u32,
) -> Result<XpropReport, RtlError> {
    check_module(module)?;
    if !module.instances.is_empty() {
        return Err(RtlError::NotFlat {
            module: module.name.clone(),
        });
    }
    let mut regs: Vec<Xv> = module.regs.iter().map(|r| Xv::unknown(r.width)).collect();
    // Memory contents start unknown too; read ports deliver X until the
    // word is written with known data. Track per-word.
    let mut mems: Vec<Vec<Xv>> = module
        .mems
        .iter()
        .map(|m| vec![Xv::unknown(m.data_width); m.depth])
        .collect();
    let mut mem_read: Vec<Vec<Xv>> = module
        .mems
        .iter()
        .map(|m| vec![Xv::unknown(m.data_width); m.read_ports.len()])
        .collect();
    let input_vals: Vec<Xv> = module
        .inputs
        .iter()
        .map(|p| {
            let v = inputs
                .iter()
                .find(|(n, _)| *n == p.name)
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| Bv::zero(p.width));
            Xv::from_bv(&v)
        })
        .collect();

    let mut registers_known_after = None;
    let mut outputs_known_after = None;
    let mut unknown_regs = Vec::new();
    let mut cycles_run = 0;
    for cycle in 0..=max_cycles {
        cycles_run = cycle;
        if registers_known_after.is_none() && regs.iter().all(Xv::is_fully_known) {
            registers_known_after = Some(cycle);
        }
        // Evaluate combinational nodes.
        let mut vals: Vec<Xv> = Vec::with_capacity(module.nodes.len());
        for (i, node) in module.nodes.iter().enumerate() {
            let v = match node {
                Node::Input(idx) => input_vals[*idx].clone(),
                Node::Const(c) => Xv::from_bv(c),
                _ => eval_node_x(node, &vals, &regs, &mem_read),
            };
            debug_assert_eq!(v.width(), module.node_widths[i]);
            vals.push(v);
        }
        if outputs_known_after.is_none()
            && module
                .output_drivers
                .iter()
                .all(|d| vals[d.index()].is_fully_known())
        {
            outputs_known_after = Some(cycle);
        }
        if registers_known_after.is_some() && outputs_known_after.is_some() {
            break;
        }
        if cycle == max_cycles {
            unknown_regs = module
                .regs
                .iter()
                .zip(&regs)
                .filter(|(_, v)| !v.is_fully_known())
                .map(|(r, _)| r.name.clone())
                .collect();
            break;
        }
        // Clock edge.
        let mut new_regs = Vec::with_capacity(regs.len());
        for (ri, reg) in module.regs.iter().enumerate() {
            let next = vals[reg.next.expect("checked").index()].clone();
            let v = match reg.en {
                None => next,
                Some(en) => Xv::mux(&vals[en.index()], &next, &regs[ri]),
            };
            new_regs.push(v);
        }
        for (mi, mem) in module.mems.iter().enumerate() {
            for (pi, rp) in mem.read_ports.iter().enumerate() {
                let addr = &vals[rp.addr.index()];
                mem_read[mi][pi] = match addr.try_to_bv() {
                    Some(a) => mems[mi][a.to_u64() as usize % mem.depth].clone(),
                    None => Xv::unknown(mem.data_width),
                };
            }
            for wp in &mem.write_ports {
                let en = &vals[wp.en.index()];
                let addr = &vals[wp.addr.index()];
                let data = vals[wp.data.index()].clone();
                match (en.try_to_bv(), addr.try_to_bv()) {
                    (Some(e), Some(a)) if e.bit(0) => {
                        let i = a.to_u64() as usize % mem.depth;
                        mems[mi][i] = data;
                    }
                    (Some(e), _) if !e.bit(0) => {} // definitely no write
                    // Unknown enable or address: every word could have been
                    // corrupted; poison all (sound, pessimistic).
                    _ => {
                        for w in &mut mems[mi] {
                            *w = Xv::unknown(mem.data_width);
                        }
                    }
                }
            }
        }
        regs = new_regs;
    }
    Ok(XpropReport {
        registers_known_after,
        outputs_known_after,
        unknown_regs,
        cycles_run,
    })
}

fn result_width(op: &BinOp, a: &Xv) -> u32 {
    if op.is_comparison() {
        1
    } else {
        a.width()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;

    /// A shift-register chain: X flushes after `depth` cycles.
    fn chain(depth: usize) -> Module {
        let mut b = ModuleBuilder::new("chain");
        let x = b.input("x", 8);
        let mut d = x;
        for i in 0..depth {
            let r = b.reg(format!("s{i}"), 8, Bv::zero(8));
            b.connect_reg(r, d);
            d = b.reg_q(r);
        }
        b.output("y", d);
        b.finish().unwrap()
    }

    #[test]
    fn pipeline_flushes_after_its_depth() {
        let report = reset_coverage(&chain(3), &[("x", Bv::from_u64(8, 7))], 10).unwrap();
        assert!(report.flushes());
        assert_eq!(report.registers_known_after, Some(3));
        assert_eq!(report.outputs_known_after, Some(3));
        assert!(report.unknown_regs.is_empty());
    }

    #[test]
    fn self_feeding_register_never_flushes_without_reset_mux() {
        // acc <= acc + x: the X in acc circulates forever.
        let mut b = ModuleBuilder::new("acc");
        let x = b.input("x", 8);
        let r = b.reg("acc", 8, Bv::zero(8));
        let q = b.reg_q(r);
        let s = b.add(q, x);
        b.connect_reg(r, s);
        b.output("y", q);
        let m = b.finish().unwrap();
        let report = reset_coverage(&m, &[("x", Bv::from_u64(8, 1))], 20).unwrap();
        assert!(!report.flushes());
        assert_eq!(report.unknown_regs, vec!["acc".to_string()]);
    }

    #[test]
    fn explicit_reset_mux_flushes_immediately() {
        // acc <= rst ? 0 : acc + x, with rst tied high.
        let mut b = ModuleBuilder::new("acc_rst");
        let rst = b.input("rst", 1);
        let x = b.input("x", 8);
        let r = b.reg("acc", 8, Bv::zero(8));
        let q = b.reg_q(r);
        let s = b.add(q, x);
        let zero = b.lit(8, 0);
        let nxt = b.mux(rst, zero, s);
        b.connect_reg(r, nxt);
        b.output("y", q);
        let m = b.finish().unwrap();
        let report = reset_coverage(
            &m,
            &[("rst", Bv::from_bool(true)), ("x", Bv::from_u64(8, 1))],
            5,
        )
        .unwrap();
        assert_eq!(report.registers_known_after, Some(1));
    }

    #[test]
    fn memory_reads_stay_unknown_until_written() {
        let mut b = ModuleBuilder::new("memx");
        let we = b.input("we", 1);
        let addr = b.input("addr", 2);
        let data = b.input("data", 8);
        let mem = b.mem("m", 2, 8, 4);
        b.mem_write(mem, we, addr, data);
        let rd = b.mem_read(mem, addr);
        b.output("q", rd);
        let m = b.finish().unwrap();
        // Writing address 1 with known data, reading address 1: the read
        // becomes known; but outputs at cycle 0/1 carry X.
        let report = reset_coverage(
            &m,
            &[
                ("we", Bv::from_bool(true)),
                ("addr", Bv::from_u64(2, 1)),
                ("data", Bv::from_u64(8, 0xAB)),
            ],
            5,
        )
        .unwrap();
        assert_eq!(report.outputs_known_after, Some(2));
    }
}
