//! 64-lane batched simulation: one kernel dispatch evaluates 64 stimuli.
//!
//! [`LaneSim`] runs the same flat [`Module`] as [`crate::Simulator`], but
//! holds every signal in **lane-transposed (bit-sliced) form**: a `w`-bit
//! signal occupies `w` limbs, and limb `i` packs bit `i` of 64 independent
//! scenarios — bit `l` of limb `i` is bit `i` of lane `l`'s value (see
//! `dfv_bits::limbs::lane_insert`). Logic, mux, compare, add/sub, and all
//! the wiring ops (slice/concat/zext/sext) then evaluate all 64 lanes with
//! ordinary word instructions, so a campaign that batches 64 scenarios pays
//! ~1/64th of the scalar engine's `node_evals`.
//!
//! # Scheduling
//!
//! `LaneSim` reuses the scalar engine's [`SimSchedule`] — the same
//! levelized order, static fanout map, and per-level dirty buckets — but
//! compiles its own kernels, because lane slots are `width` limbs wide
//! (one limb per *bit*) instead of `limbs_for(width)`. Dirty tracking is
//! shared across lanes: a node is re-evaluated if *any* lane's fan-in
//! changed, and one dispatch then refreshes all 64 lanes. The batched
//! dirty cone is therefore the union of the per-lane cones, which is
//! exactly what keeps per-lane results identical to 64 scalar runs.
//!
//! # Hard ops
//!
//! Every kernel evaluates in the lane domain — there is no per-lane
//! scalar fallback left. Multiplication is a shift-add kernel (slice `i`
//! of `b` masks the lanes where `a << i` enters the accumulator), the
//! shifts are lane-masked barrel shifters, and division/remainder run a
//! bit-serial restoring divider over the bit slices (`w` subtract/select
//! steps divide all 64 lanes; signed variants divide magnitudes and
//! patch signs per lane — see [`lane_udivrem`]). Divide-by-zero lanes
//! follow the `Bv` oracle's semantics (all-ones quotient, dividend
//! remainder) by construction. [`LaneStats::lane_fallback_evals`] is
//! retained for report compatibility and is now always zero.
//!
//! # Determinism
//!
//! Evaluation order is the schedule's levelized order; lanes never
//! interact except through explicit per-lane state (memories, fallback
//! ops), which is visited in ascending lane order. For a fixed per-lane
//! stimulus, every per-lane output, register, and trace value is
//! bit-identical to a scalar [`crate::Simulator`] run of that stimulus —
//! the differential property suite in `crates/designs` pins this.

use dfv_bits::limbs::{lane_extract, lane_insert, lane_splat, limbs_for, LANES};
use dfv_bits::Bv;

use crate::check::check_module;
use crate::ir::{BinOp, Module, Node, NodeId, UnOp};
use crate::schedule::SimSchedule;
use crate::sim::TraceStep;
use crate::RtlError;

/// Cumulative work counters for one [`LaneSim`]. Monotonic across the
/// simulator's lifetime (reset clears state, not these).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaneStats {
    /// Completed clock cycles ([`LaneSim::step`] calls).
    pub steps: u64,
    /// Combinational evaluation passes actually run.
    pub eval_passes: u64,
    /// Kernel dispatches across all passes. One dispatch evaluates all 64
    /// lanes, so this is the number to compare against 64 scalar runs'
    /// `node_evals`.
    pub node_evals: u64,
    /// Per-lane scalar-oracle evaluations. Since the restoring divider
    /// moved division into the lane domain no kernel falls back, so this
    /// is always zero; the field stays so work-ratio reports keep their
    /// shape.
    pub lane_fallback_evals: u64,
}

/// One lane-arena slot: `width` limbs at `off`, limb `i` = bit `i` across
/// all 64 lanes.
#[derive(Debug, Clone, Copy)]
struct LaneSlot {
    off: u32,
    width: u32,
}

/// A compiled lane kernel: the node's operator with operands resolved to
/// lane-arena offsets. Mirrors the scalar `Kernel`, but offsets index the
/// bit-sliced arena.
#[derive(Debug, Clone)]
enum LaneKernel {
    Input(usize),
    /// Written once at reset (splatted across lanes); never changes.
    Const,
    Copy {
        a: u32,
    },
    Un {
        op: UnOp,
        a: u32,
        aw: u32,
    },
    Bin {
        op: BinOp,
        a: u32,
        aw: u32,
        b: u32,
        bw: u32,
    },
    Mux {
        sel: u32,
        t: u32,
        f: u32,
    },
    Slice {
        a: u32,
        lo: u32,
    },
    Concat {
        a: u32,
        b: u32,
        bw: u32,
    },
    Zext {
        a: u32,
        aw: u32,
    },
    Sext {
        a: u32,
        aw: u32,
    },
}

/// The lane-arena layout plus compiled lane kernels — built once per
/// module, immutable afterwards (the lane analogue of [`SimSchedule`],
/// which it sits beside rather than replaces: levels, order, and fanout
/// still come from the schedule).
#[derive(Debug, Clone)]
struct LaneProgram {
    node_slots: Vec<LaneSlot>,
    reg_slots: Vec<LaneSlot>,
    mem_rd_slots: Vec<Vec<LaneSlot>>,
    /// Per memory: (base offset into the lane memory arena, per-word
    /// stride in limbs, per-lane stride in limbs = word stride * depth).
    mem_layout: Vec<(u32, u32, u32)>,
    kernels: Vec<LaneKernel>,
    state_len: usize,
    arena_len: usize,
    mem_arena_len: usize,
    /// Widest node in bits (scratch sizing: lane scratch is `width` limbs).
    max_width: usize,
    /// Widest node in value-form limbs (fallback buffer sizing).
    max_limbs: usize,
}

impl LaneProgram {
    fn build(module: &Module) -> Self {
        let mut off = 0u32;
        let mut max_width = 1usize;
        let mut max_limbs = 1usize;
        let mut slot_at = |width: u32, off: &mut u32| {
            let s = LaneSlot { off: *off, width };
            *off += width;
            max_width = max_width.max(width as usize);
            max_limbs = max_limbs.max(limbs_for(width));
            s
        };
        // Same layout discipline as the scalar arena: registers and memory
        // read registers first, then nodes in id order, so every operand
        // sits strictly below its consumer and `split_at_mut` hands out
        // reads and the result write simultaneously.
        let reg_slots: Vec<LaneSlot> = module
            .regs
            .iter()
            .map(|r| slot_at(r.width, &mut off))
            .collect();
        let mem_rd_slots: Vec<Vec<LaneSlot>> = module
            .mems
            .iter()
            .map(|m| {
                m.read_ports
                    .iter()
                    .map(|_| slot_at(m.data_width, &mut off))
                    .collect()
            })
            .collect();
        let state_len = off as usize;
        let node_slots: Vec<LaneSlot> = module
            .node_widths
            .iter()
            .map(|&w| slot_at(w, &mut off))
            .collect();
        let arena_len = off as usize;

        // Per-lane memories stay in value form (addresses diverge across
        // lanes), laid out lane-major: lane l's copy of memory m starts at
        // base + l * lane_stride.
        let mut mem_layout = Vec::with_capacity(module.mems.len());
        let mut mem_off = 0u32;
        for m in &module.mems {
            let stride = limbs_for(m.data_width) as u32;
            let lane_stride = stride * m.depth as u32;
            mem_layout.push((mem_off, stride, lane_stride));
            mem_off += lane_stride * LANES as u32;
            max_limbs = max_limbs.max(stride as usize);
        }
        let mem_arena_len = mem_off as usize;

        let so = |id: &NodeId| node_slots[id.index()].off;
        let sw = |id: &NodeId| node_slots[id.index()].width;
        let kernels = module
            .nodes
            .iter()
            .map(|node| match node {
                Node::Input(idx) => LaneKernel::Input(*idx),
                Node::Const(_) => LaneKernel::Const,
                Node::RegQ(r) => LaneKernel::Copy {
                    a: reg_slots[r.index()].off,
                },
                Node::MemReadData(m, p) => LaneKernel::Copy {
                    a: mem_rd_slots[m.index()][*p].off,
                },
                Node::InstOut(..) => unreachable!("lane sim requires a flat module"),
                Node::Un(op, a) => LaneKernel::Un {
                    op: *op,
                    a: so(a),
                    aw: sw(a),
                },
                Node::Bin(op, a, b) => LaneKernel::Bin {
                    op: *op,
                    a: so(a),
                    aw: sw(a),
                    b: so(b),
                    bw: sw(b),
                },
                Node::Mux { sel, t, f } => LaneKernel::Mux {
                    sel: so(sel),
                    t: so(t),
                    f: so(f),
                },
                Node::Slice { src, lo, .. } => LaneKernel::Slice {
                    a: so(src),
                    lo: *lo,
                },
                Node::Concat(a, b) => LaneKernel::Concat {
                    a: so(a),
                    b: so(b),
                    bw: sw(b),
                },
                Node::Zext(a, _) => LaneKernel::Zext {
                    a: so(a),
                    aw: sw(a),
                },
                Node::Sext(a, _) => LaneKernel::Sext {
                    a: so(a),
                    aw: sw(a),
                },
            })
            .collect();

        LaneProgram {
            node_slots,
            reg_slots,
            mem_rd_slots,
            mem_layout,
            kernels,
            state_len,
            arena_len,
            mem_arena_len,
            max_width,
            max_limbs,
        }
    }

    /// Evaluates node `n` for all 64 lanes. Returns `(changed,
    /// fallback_lanes)` where `fallback_lanes` is 64 for the per-lane
    /// oracle kernels and 0 otherwise.
    fn eval_node(
        &self,
        n: usize,
        arena: &mut [u64],
        inputs: &[Vec<u64>],
        scratch: &mut Vec<u64>,
        fb: &mut DivBufs,
    ) -> (bool, u64) {
        let slot = self.node_slots[n];
        let ow = slot.width;
        let (lo, hi) = arena.split_at_mut(slot.off as usize);
        let out = &mut hi[..ow as usize];
        let rd = |off: u32, w: u32| &lo[off as usize..(off + w) as usize];
        let changed = match &self.kernels[n] {
            LaneKernel::Input(idx) => write_diff(out, &inputs[*idx]),
            LaneKernel::Const => false,
            LaneKernel::Copy { a } => write_diff(out, rd(*a, ow)),
            LaneKernel::Un { op, a, aw } => {
                let av = rd(*a, *aw);
                sized(scratch, ow);
                match op {
                    UnOp::Not => {
                        for (d, x) in scratch.iter_mut().zip(av) {
                            *d = !x;
                        }
                    }
                    UnOp::Neg => lane_neg(scratch, av),
                    UnOp::RedAnd => scratch[0] = av.iter().fold(u64::MAX, |m, &x| m & x),
                    UnOp::RedOr => scratch[0] = av.iter().fold(0, |m, &x| m | x),
                    UnOp::RedXor => scratch[0] = av.iter().fold(0, |m, &x| m ^ x),
                }
                write_diff(out, scratch)
            }
            LaneKernel::Bin { op, a, aw, b, bw } => {
                let (av, bv) = (
                    &lo[*a as usize..(*a + *aw) as usize],
                    &lo[*b as usize..(*b + *bw) as usize],
                );
                sized(scratch, ow);
                match op {
                    BinOp::And => {
                        for (d, (x, y)) in scratch.iter_mut().zip(av.iter().zip(bv)) {
                            *d = x & y;
                        }
                    }
                    BinOp::Or => {
                        for (d, (x, y)) in scratch.iter_mut().zip(av.iter().zip(bv)) {
                            *d = x | y;
                        }
                    }
                    BinOp::Xor => {
                        for (d, (x, y)) in scratch.iter_mut().zip(av.iter().zip(bv)) {
                            *d = x ^ y;
                        }
                    }
                    BinOp::Add => lane_add(scratch, av, bv),
                    BinOp::Sub => lane_sub(scratch, av, bv),
                    BinOp::Mul => lane_mul(scratch, av, bv),
                    BinOp::Eq => scratch[0] = !lane_ne(av, bv),
                    BinOp::Ne => scratch[0] = lane_ne(av, bv),
                    BinOp::ULt => scratch[0] = lane_ult(av, bv),
                    BinOp::ULe => scratch[0] = !lane_ult(bv, av),
                    BinOp::SLt => scratch[0] = lane_slt(av, bv),
                    BinOp::SLe => scratch[0] = !lane_slt(bv, av),
                    BinOp::Shl | BinOp::LShr | BinOp::AShr => {
                        scratch.copy_from_slice(av);
                        lane_shift(*op, scratch, bv);
                    }
                    BinOp::UDiv | BinOp::URem => {
                        // Restoring division in the lane domain: one
                        // bit-serial pass divides all 64 lanes at once.
                        fb.sized(ow);
                        lane_udivrem(av, bv, &mut fb.quo, &mut fb.rem, &mut fb.diff);
                        scratch.copy_from_slice(if *op == BinOp::UDiv { &fb.quo } else { &fb.rem });
                    }
                    BinOp::SDiv | BinOp::SRem => {
                        fb.sized(ow);
                        lane_sdivrem(*op, av, bv, scratch, fb);
                    }
                }
                write_diff(out, scratch)
            }
            LaneKernel::Mux { sel, t, f } => {
                let s = lo[*sel as usize];
                let (tv, fv) = (rd(*t, ow), rd(*f, ow));
                sized(scratch, ow);
                for (d, (x, y)) in scratch.iter_mut().zip(tv.iter().zip(fv)) {
                    *d = (s & x) | (!s & y);
                }
                write_diff(out, scratch)
            }
            LaneKernel::Slice { a, lo: low } => write_diff(out, rd(*a + *low, ow)),
            LaneKernel::Concat { a, b, bw } => {
                sized(scratch, ow);
                scratch[..*bw as usize].copy_from_slice(rd(*b, *bw));
                scratch[*bw as usize..].copy_from_slice(rd(*a, ow - *bw));
                write_diff(out, scratch)
            }
            LaneKernel::Zext { a, aw } => {
                sized(scratch, ow);
                scratch[..*aw as usize].copy_from_slice(rd(*a, *aw));
                write_diff(out, scratch)
            }
            LaneKernel::Sext { a, aw } => {
                let av = rd(*a, *aw);
                sized(scratch, ow);
                scratch[..*aw as usize].copy_from_slice(av);
                let sign = av[*aw as usize - 1];
                for d in scratch[*aw as usize..].iter_mut() {
                    *d = sign;
                }
                write_diff(out, scratch)
            }
        };
        (changed, 0)
    }
}

/// Bit-sliced scratch groups for the lane-domain divider (quotient,
/// remainder, subtract scratch, and the two signed-magnitude operands).
#[derive(Debug, Clone, Default)]
struct DivBufs {
    quo: Vec<u64>,
    rem: Vec<u64>,
    diff: Vec<u64>,
    ma: Vec<u64>,
    mb: Vec<u64>,
}

impl DivBufs {
    fn sized(&mut self, w: u32) {
        for v in [
            &mut self.quo,
            &mut self.rem,
            &mut self.diff,
            &mut self.ma,
            &mut self.mb,
        ] {
            v.clear();
            v.resize(w as usize, 0);
        }
    }
}

/// One recorded cycle of watched outputs, in lane form.
#[derive(Debug, Clone)]
struct LaneTraceStep {
    cycle: u64,
    /// Per watch: the driver's lane group (`width` limbs).
    values: Vec<Vec<u64>>,
}

/// A 64-lane batched simulator for a flat [`Module`]: every input, state
/// element, and node holds 64 independent scenarios, and one kernel
/// dispatch advances all of them. See the module docs for the lane
/// layout, scheduling, and fallback rules.
///
/// # Example
///
/// ```
/// use dfv_bits::Bv;
/// use dfv_rtl::{LaneSim, ModuleBuilder};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = ModuleBuilder::new("addc");
/// let x = b.input("x", 8);
/// let y = b.input("y", 8);
/// let s = b.add(x, y);
/// b.output("s", s);
/// let mut sim = LaneSim::new(b.finish()?)?;
/// for lane in 0..64 {
///     sim.poke_lane("x", lane, Bv::from_u64(8, lane as u64));
///     sim.poke_lane("y", lane, Bv::from_u64(8, 100));
/// }
/// assert_eq!(sim.output_lane("s", 63).to_u64(), 163);
/// assert_eq!(sim.stats().node_evals, sim.module().nodes.len() as u64);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LaneSim {
    module: Module,
    sched: SimSchedule,
    prog: LaneProgram,
    /// Lane-transposed value arena: `[reg][mem read reg][node]` slots,
    /// each `width` limbs.
    arena: Vec<u64>,
    /// Per-lane memory contents, value form, lane-major.
    mem_arena: Vec<u64>,
    /// Current input values, lane form (`width` limbs per port).
    input_vals: Vec<Vec<u64>>,
    dirty_levels: Vec<Vec<u32>>,
    in_dirty: Vec<bool>,
    full_dirty: bool,
    dirty: bool,
    scratch: Vec<u64>,
    fb: DivBufs,
    /// Value-form scratch for pokes/reads/memory stepping.
    val_buf: Vec<u64>,
    cycle: u64,
    watches: Vec<usize>,
    trace: Vec<LaneTraceStep>,
    stats: LaneStats,
}

impl LaneSim {
    /// Creates a 64-lane simulator for `module`, validating it first. The
    /// module must be flat; all lanes start at the reset state.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError`] if validation fails or the module has
    /// instances.
    pub fn new(module: Module) -> Result<Self, RtlError> {
        check_module(&module)?;
        if !module.instances.is_empty() {
            return Err(RtlError::NotFlat {
                module: module.name.clone(),
            });
        }
        let sched = SimSchedule::build(&module);
        let prog = LaneProgram::build(&module);
        let input_vals = module
            .inputs
            .iter()
            .map(|p| vec![0u64; p.width as usize])
            .collect();
        let mut sim = LaneSim {
            arena: vec![0; prog.arena_len],
            mem_arena: vec![0; prog.mem_arena_len],
            input_vals,
            dirty_levels: vec![Vec::new(); sched.num_levels() as usize],
            in_dirty: vec![false; module.nodes.len()],
            full_dirty: true,
            dirty: true,
            scratch: Vec::with_capacity(prog.max_width),
            fb: DivBufs::default(),
            val_buf: vec![0; prog.max_limbs],
            cycle: 0,
            watches: Vec::new(),
            trace: Vec::new(),
            stats: LaneStats::default(),
            prog,
            sched,
            module,
        };
        sim.reset();
        Ok(sim)
    }

    /// The simulated module.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// The shared evaluation schedule (levels, fanout edges).
    pub fn schedule(&self) -> &SimSchedule {
        &self.sched
    }

    /// The current cycle count (completed [`LaneSim::step`]s since reset).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Cumulative work counters (monotonic; not cleared by reset).
    pub fn stats(&self) -> LaneStats {
        self.stats
    }

    /// Resets every lane: registers to init, memories to initial contents,
    /// inputs to zero, cycle to 0. The trace is cleared; stats are not.
    pub fn reset(&mut self) {
        self.arena.fill(0);
        self.mem_arena.fill(0);
        for (i, r) in self.module.regs.iter().enumerate() {
            let s = self.prog.reg_slots[i];
            lane_splat(
                &mut self.arena[s.off as usize..][..s.width as usize],
                s.width,
                r.init.limbs(),
            );
        }
        for (mi, m) in self.module.mems.iter().enumerate() {
            let (base, stride, lane_stride) = self.prog.mem_layout[mi];
            for lane in 0..LANES {
                let lb = base as usize + lane * lane_stride as usize;
                for (a, w) in m.init.iter().enumerate() {
                    self.mem_arena[lb + a * stride as usize..][..stride as usize]
                        .copy_from_slice(w.limbs());
                }
            }
        }
        // Constants are splatted once here; their kernels are no-ops.
        for (i, node) in self.module.nodes.iter().enumerate() {
            if let Node::Const(c) = node {
                let s = self.prog.node_slots[i];
                lane_splat(
                    &mut self.arena[s.off as usize..][..s.width as usize],
                    s.width,
                    c.limbs(),
                );
            }
        }
        for v in &mut self.input_vals {
            v.fill(0);
        }
        for b in &mut self.dirty_levels {
            b.clear();
        }
        self.in_dirty.fill(false);
        self.full_dirty = true;
        self.cycle = 0;
        self.dirty = true;
        self.trace.clear();
    }

    /// Sets an input port for one lane. Re-poking the value the lane
    /// already holds is free: nothing is marked dirty.
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist, the width differs, or
    /// `lane >= 64`.
    pub fn poke_lane(&mut self, port: &str, lane: usize, value: Bv) {
        let idx = self.input_index(port, &value);
        let w = self.module.inputs[idx].width;
        lane_extract(
            &self.input_vals[idx],
            w,
            lane,
            &mut self.val_buf[..limbs_for(w)],
        );
        if self.val_buf[..limbs_for(w)] == *value.limbs() {
            return;
        }
        lane_insert(&mut self.input_vals[idx], w, lane, value.limbs());
        self.mark_input_dirty(idx);
    }

    /// Sets an input port to the same value on every lane.
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist or the width differs.
    pub fn poke_splat(&mut self, port: &str, value: Bv) {
        let idx = self.input_index(port, &value);
        let w = self.module.inputs[idx].width;
        sized(&mut self.scratch, w);
        lane_splat(&mut self.scratch, w, value.limbs());
        if self.input_vals[idx] == self.scratch {
            return;
        }
        self.input_vals[idx].copy_from_slice(&self.scratch);
        self.mark_input_dirty(idx);
    }

    fn input_index(&self, port: &str, value: &Bv) -> usize {
        let idx = self
            .module
            .input_index(port)
            .unwrap_or_else(|| panic!("no input port named {port:?}"));
        assert_eq!(
            value.width(),
            self.module.inputs[idx].width,
            "poke width mismatch on {port:?}"
        );
        idx
    }

    fn mark_input_dirty(&mut self, idx: usize) {
        let (in_dirty, buckets, sched) = (&mut self.in_dirty, &mut self.dirty_levels, &self.sched);
        for &n in sched.input_nodes(idx) {
            if !in_dirty[n as usize] {
                in_dirty[n as usize] = true;
                buckets[sched.level_raw(n) as usize].push(n);
            }
        }
        self.dirty = true;
    }

    /// Evaluates combinational logic if any lane's inputs or state changed
    /// since the last evaluation.
    pub fn eval(&mut self) {
        if !self.dirty {
            return;
        }
        let (evaled, fallbacks) = if self.full_dirty {
            self.full_pass()
        } else {
            self.dirty_pass()
        };
        self.dirty = false;
        self.stats.eval_passes += 1;
        self.stats.node_evals += evaled;
        self.stats.lane_fallback_evals += fallbacks;
    }

    fn full_pass(&mut self) -> (u64, u64) {
        let mut fallbacks = 0u64;
        for &n in self.sched.order() {
            let (_, fb) = self.prog.eval_node(
                n as usize,
                &mut self.arena,
                &self.input_vals,
                &mut self.scratch,
                &mut self.fb,
            );
            fallbacks += fb;
        }
        let in_dirty = &mut self.in_dirty;
        for b in &mut self.dirty_levels {
            for &n in b.iter() {
                in_dirty[n as usize] = false;
            }
            b.clear();
        }
        self.full_dirty = false;
        (self.module.nodes.len() as u64, fallbacks)
    }

    fn dirty_pass(&mut self) -> (u64, u64) {
        let mut evaled = 0u64;
        let mut fallbacks = 0u64;
        for lvl in 0..self.dirty_levels.len() {
            if self.dirty_levels[lvl].is_empty() {
                continue;
            }
            let mut bucket = std::mem::take(&mut self.dirty_levels[lvl]);
            bucket.sort_unstable();
            for &n in &bucket {
                self.in_dirty[n as usize] = false;
                evaled += 1;
                let (changed, fb) = self.prog.eval_node(
                    n as usize,
                    &mut self.arena,
                    &self.input_vals,
                    &mut self.scratch,
                    &mut self.fb,
                );
                fallbacks += fb;
                if changed {
                    let (in_dirty, buckets, sched) =
                        (&mut self.in_dirty, &mut self.dirty_levels, &self.sched);
                    for f in sched.fanouts(n) {
                        let fi = f.index();
                        if !in_dirty[fi] {
                            in_dirty[fi] = true;
                            buckets[sched.level_raw(fi as u32) as usize].push(fi as u32);
                        }
                    }
                }
            }
            bucket.clear();
            self.dirty_levels[lvl] = bucket;
        }
        (evaled, fallbacks)
    }

    fn node_lane_bv(&mut self, n: usize, lane: usize) -> Bv {
        let s = self.prog.node_slots[n];
        lane_extract(
            &self.arena[s.off as usize..][..s.width as usize],
            s.width,
            lane,
            &mut self.val_buf[..limbs_for(s.width)],
        );
        Bv::from_limbs(s.width, &self.val_buf[..limbs_for(s.width)])
    }

    /// Reads an output port's value on one lane (after evaluating).
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist or `lane >= 64`.
    pub fn output_lane(&mut self, port: &str, lane: usize) -> Bv {
        assert!(lane < LANES, "lane {lane} out of range");
        let idx = self
            .module
            .output_index(port)
            .unwrap_or_else(|| panic!("no output port named {port:?}"));
        self.eval();
        self.node_lane_bv(self.module.output_drivers[idx].index(), lane)
    }

    /// Reads an arbitrary node's value on one lane (after evaluating).
    pub fn peek_lane(&mut self, node: NodeId, lane: usize) -> Bv {
        assert!(lane < LANES, "lane {lane} out of range");
        self.eval();
        self.node_lane_bv(node.index(), lane)
    }

    /// Reads a register's current value on one lane.
    ///
    /// # Panics
    ///
    /// Panics if no register has that name or `lane >= 64`.
    pub fn reg_value_lane(&mut self, name: &str, lane: usize) -> Bv {
        assert!(lane < LANES, "lane {lane} out of range");
        let r = self
            .module
            .reg_index(name)
            .unwrap_or_else(|| panic!("no register named {name:?}"));
        let s = self.prog.reg_slots[r.index()];
        lane_extract(
            &self.arena[s.off as usize..][..s.width as usize],
            s.width,
            lane,
            &mut self.val_buf[..limbs_for(s.width)],
        );
        Bv::from_limbs(s.width, &self.val_buf[..limbs_for(s.width)])
    }

    /// Overrides a register's current value on one lane — the batched
    /// analogue of [`crate::Simulator::set_reg`], used to explore 64
    /// initial states in one run. Marks the register's fanout dirty.
    ///
    /// # Panics
    ///
    /// Panics if no register has that name, the width differs, or
    /// `lane >= 64`.
    pub fn set_reg_lane(&mut self, name: &str, lane: usize, value: Bv) {
        assert!(lane < LANES, "lane {lane} out of range");
        let r = self
            .module
            .reg_index(name)
            .unwrap_or_else(|| panic!("no register named {name:?}"));
        let idx = r.index();
        assert_eq!(
            value.width(),
            self.module.regs[idx].width,
            "set_reg width mismatch on {name:?}"
        );
        let s = self.prog.reg_slots[idx];
        lane_insert(
            &mut self.arena[s.off as usize..][..s.width as usize],
            s.width,
            lane,
            value.limbs(),
        );
        let (in_dirty, buckets, sched) = (&mut self.in_dirty, &mut self.dirty_levels, &self.sched);
        for &n in sched.reg_nodes(idx) {
            if !in_dirty[n as usize] {
                in_dirty[n as usize] = true;
                buckets[sched.level_raw(n) as usize].push(n);
            }
        }
        self.dirty = true;
    }

    /// A node's lane group after evaluation: `width` limbs, limb `i`
    /// holding bit `i` of all 64 lanes. The transposed form doubles as a
    /// 64-pattern signature — hashing these limbs compares a node's
    /// behavior across 64 stimuli with no per-lane extraction, which is
    /// what the SAT-sweeping candidate detector in `dfv-sec` keys on.
    pub fn node_lanes(&mut self, node: NodeId) -> &[u64] {
        self.eval();
        let s = self.prog.node_slots[node.index()];
        &self.arena[s.off as usize..][..s.width as usize]
    }

    /// Advances one clock cycle on all 64 lanes: evaluates, then commits
    /// registers (with per-lane enable masking) and memories (read-first,
    /// per lane) at the rising edge.
    pub fn step(&mut self) {
        self.eval();
        self.record_trace();
        let base = self.prog.state_len;
        let (state, nodes) = self.arena.split_at_mut(base);
        let prog = &self.prog;
        let sched = &self.sched;
        let in_dirty = &mut self.in_dirty;
        let buckets = &mut self.dirty_levels;
        let mut any = false;
        let mut mark_all = |ids: &[u32], any: &mut bool| {
            for &n in ids {
                if !in_dirty[n as usize] {
                    in_dirty[n as usize] = true;
                    buckets[sched.level_raw(n) as usize].push(n);
                }
            }
            *any = true;
        };
        // Registers: per-lane enable masking — lane l loads D iff its
        // enable bit is set, otherwise keeps its current value.
        for (i, reg) in self.module.regs.iter().enumerate() {
            let en = reg
                .en
                .map(|en| nodes[prog.node_slots[en.index()].off as usize - base])
                .unwrap_or(u64::MAX);
            if en == 0 {
                continue;
            }
            let ns = prog.node_slots[reg.next.expect("checked: connected").index()];
            let d = &nodes[ns.off as usize - base..][..ns.width as usize];
            let rs = prog.reg_slots[i];
            let cur = &mut state[rs.off as usize..][..rs.width as usize];
            let mut changed = false;
            for (c, &dv) in cur.iter_mut().zip(d) {
                let new = (en & dv) | (!en & *c);
                if new != *c {
                    *c = new;
                    changed = true;
                }
            }
            if changed {
                mark_all(sched.reg_nodes(i), &mut any);
            }
        }
        // Memories: sample read addresses (read-first), then write — each
        // lane addresses its own copy of the memory.
        for (mi, mem) in self.module.mems.iter().enumerate() {
            let (mbase, stride, lane_stride) = prog.mem_layout[mi];
            let (mbase, stride, lane_stride) =
                (mbase as usize, stride as usize, lane_stride as usize);
            for (pi, rp) in mem.read_ports.iter().enumerate() {
                let aslot = prog.node_slots[rp.addr.index()];
                let aslices = &nodes[aslot.off as usize - base..][..aslot.width as usize];
                let rs = prog.mem_rd_slots[mi][pi];
                sized(&mut self.scratch, rs.width);
                for lane in 0..LANES {
                    let addr = lane_u64(aslices, lane) as usize % mem.depth;
                    let word =
                        &self.mem_arena[mbase + lane * lane_stride + addr * stride..][..stride];
                    lane_insert(&mut self.scratch, rs.width, lane, word);
                }
                let cur = &mut state[rs.off as usize..][..rs.width as usize];
                if *cur != self.scratch[..] {
                    cur.copy_from_slice(&self.scratch);
                    mark_all(sched.mem_read_nodes(mi, pi), &mut any);
                }
            }
            for wp in &mem.write_ports {
                let en = nodes[prog.node_slots[wp.en.index()].off as usize - base];
                if en == 0 {
                    continue;
                }
                let aslot = prog.node_slots[wp.addr.index()];
                let aslices = &nodes[aslot.off as usize - base..][..aslot.width as usize];
                let ds = prog.node_slots[wp.data.index()];
                let dslices = &nodes[ds.off as usize - base..][..ds.width as usize];
                for lane in 0..LANES {
                    if (en >> lane) & 1 == 0 {
                        continue;
                    }
                    let addr = lane_u64(aslices, lane) as usize % mem.depth;
                    lane_extract(dslices, ds.width, lane, &mut self.val_buf[..stride]);
                    self.mem_arena[mbase + lane * lane_stride + addr * stride..][..stride]
                        .copy_from_slice(&self.val_buf[..stride]);
                }
            }
        }
        self.cycle += 1;
        if any {
            self.dirty = true;
        }
        self.stats.steps += 1;
    }

    /// Watches an output port; all 64 lanes' values are recorded at every
    /// step.
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist.
    pub fn watch_output(&mut self, port: &str) {
        let idx = self
            .module
            .output_index(port)
            .unwrap_or_else(|| panic!("no output port named {port:?}"));
        self.watches.push(idx);
    }

    /// The recorded trace of one lane, in the scalar simulator's
    /// [`TraceStep`] form (so per-lane traces compare directly against
    /// a scalar run's trace).
    pub fn trace_lane(&self, lane: usize) -> Vec<TraceStep> {
        assert!(lane < LANES, "lane {lane} out of range");
        self.trace
            .iter()
            .map(|t| TraceStep {
                cycle: t.cycle,
                values: t
                    .values
                    .iter()
                    .zip(&self.watches)
                    .map(|(group, &idx)| {
                        let w = self.module.outputs[idx].width;
                        let mut buf = vec![0u64; limbs_for(w)];
                        lane_extract(group, w, lane, &mut buf);
                        Bv::from_limbs(w, &buf)
                    })
                    .collect(),
            })
            .collect()
    }

    fn record_trace(&mut self) {
        if self.watches.is_empty() {
            return;
        }
        let values: Vec<Vec<u64>> = self
            .watches
            .iter()
            .map(|&idx| {
                let s = self.prog.node_slots[self.module.output_drivers[idx].index()];
                self.arena[s.off as usize..][..s.width as usize].to_vec()
            })
            .collect();
        self.trace.push(LaneTraceStep {
            cycle: self.cycle,
            values,
        });
    }
}

/// Extracts lane `lane`'s value from a lane group as a `u64` (the low 64
/// bits — enough for memory addressing, where widths are small).
fn lane_u64(slices: &[u64], lane: usize) -> u64 {
    let mut v = 0u64;
    for (i, s) in slices.iter().take(64).enumerate() {
        v |= ((s >> lane) & 1) << i;
    }
    v
}

/// Lane-parallel ripple-carry add: `out = a + b` per lane, one full-adder
/// step per bit slice.
fn lane_add(out: &mut [u64], a: &[u64], b: &[u64]) {
    let mut c = 0u64;
    for (d, (&x, &y)) in out.iter_mut().zip(a.iter().zip(b)) {
        let axb = x ^ y;
        *d = axb ^ c;
        c = (x & y) | (c & axb);
    }
}

/// Lane-parallel subtract: `out = a - b` per lane, as `a + !b + 1`.
fn lane_sub(out: &mut [u64], a: &[u64], b: &[u64]) {
    let mut c = u64::MAX;
    for (d, (&x, &y)) in out.iter_mut().zip(a.iter().zip(b)) {
        let s = !y;
        let axs = x ^ s;
        *d = axs ^ c;
        c = (x & s) | (c & axs);
    }
}

/// Lane-parallel truncated multiply: shift-add over `b`'s bit slices.
/// Slice `i` of `b` is a 64-lane mask selecting the lanes where `a << i`
/// enters the accumulator, so one call is 64 multiplies; truncation to
/// the output width makes the signed and unsigned products coincide, as
/// in the scalar `wrapping_mul`. O(w^2) slice ops, but with no `b` bit
/// set above slice `i` the inner loop never runs past `i` — multiplies
/// by small constants (filter taps) stay cheap.
fn lane_mul(out: &mut [u64], a: &[u64], b: &[u64]) {
    out.fill(0);
    let w = out.len();
    for (i, &mask) in b.iter().enumerate().take(w) {
        if mask == 0 {
            continue;
        }
        let mut c = 0u64;
        for j in i..w {
            let x = out[j];
            let y = a[j - i] & mask;
            let axb = x ^ y;
            out[j] = axb ^ c;
            c = (x & y) | (c & axb);
        }
    }
}

/// Lane-parallel barrel shift, in place: `out` holds the value group on
/// entry and `amt` is the shift-amount group. Stage `k` shifts by `2^k`
/// slice positions exactly in the lanes where bit `k` of the amount is
/// set; bits shifted past the width drop out, so amounts `>= width`
/// converge to all-zeros (`Shl`/`LShr`) or all-sign (`AShr`) — the `Bv`
/// oracle's semantics. A stage whose step reaches or exceeds the width
/// cannot move bits at all and only zero-/sign-fills its lanes.
fn lane_shift(op: BinOp, out: &mut [u64], amt: &[u64]) {
    let w = out.len();
    for (k, &m) in amt.iter().enumerate() {
        if m == 0 {
            continue;
        }
        let step = 1usize.checked_shl(k as u32).unwrap_or(usize::MAX);
        let sgn = out[w - 1];
        match op {
            BinOp::Shl => {
                for j in (step.min(w)..w).rev() {
                    out[j] = (out[j - step] & m) | (out[j] & !m);
                }
                for s in out[..step.min(w)].iter_mut() {
                    *s &= !m;
                }
            }
            BinOp::LShr | BinOp::AShr => {
                let fill = if op == BinOp::AShr { sgn & m } else { 0 };
                for j in 0..w - step.min(w) {
                    out[j] = (out[j + step] & m) | (out[j] & !m);
                }
                for s in out[w - step.min(w)..].iter_mut() {
                    *s = fill | (*s & !m);
                }
            }
            _ => unreachable!("lane_shift only handles shift ops"),
        }
    }
}

/// Lane-parallel restoring division: for every lane, `quo = a / b` and
/// `rem = a % b`, computed entirely in the bit-sliced domain. Classic
/// bit-serial restoring division, one subtract/select step per bit: the
/// remainder shifts left absorbing the next dividend bit, lanes where it
/// reached the divisor subtract it and set the quotient bit. The bit
/// shifted out of the remainder (`top`) stands in for the `w+1`-th
/// compare bit, so a `w`-limb remainder suffices.
///
/// Divide-by-zero lanes get the oracle semantics for free: `rem < 0` is
/// never true, so every quotient bit sets (all-ones) and nothing is ever
/// subtracted (the remainder ends as the dividend).
///
/// `diff` is scratch; all slices are `a.len()` limbs.
fn lane_udivrem(a: &[u64], b: &[u64], quo: &mut [u64], rem: &mut [u64], diff: &mut [u64]) {
    let w = a.len();
    rem.fill(0);
    for i in (0..w).rev() {
        let top = rem[w - 1];
        for j in (1..w).rev() {
            rem[j] = rem[j - 1];
        }
        rem[0] = a[i];
        // Lanes where the (top:rem) value is >= b: top set means the
        // shifted remainder overflowed w bits and certainly exceeds b.
        let ge = top | !lane_ult(rem, b);
        lane_sub(diff, rem, b);
        for (r, &d) in rem.iter_mut().zip(diff.iter()) {
            *r = (ge & d) | (!ge & *r);
        }
        quo[i] = ge;
    }
}

/// Lane-parallel signed division/remainder via magnitudes: divide
/// `|a| / |b|` with [`lane_udivrem`], then negate the quotient in lanes
/// with differing operand signs (patching divide-by-zero lanes to the
/// all-ones quotient) and the remainder in lanes with a negative
/// dividend (by-zero lanes come out as the dividend automatically).
fn lane_sdivrem(op: BinOp, a: &[u64], b: &[u64], out: &mut [u64], fb: &mut DivBufs) {
    let w = a.len();
    let (sa, sb) = (a[w - 1], b[w - 1]);
    lane_neg(&mut fb.diff, a);
    for (m, (&n, &x)) in fb.ma.iter_mut().zip(fb.diff.iter().zip(a)) {
        *m = (sa & n) | (!sa & x);
    }
    lane_neg(&mut fb.diff, b);
    for (m, (&n, &x)) in fb.mb.iter_mut().zip(fb.diff.iter().zip(b)) {
        *m = (sb & n) | (!sb & x);
    }
    // Split borrows: the divider writes quo/rem with ma/mb as inputs.
    let (ma, mb) = (std::mem::take(&mut fb.ma), std::mem::take(&mut fb.mb));
    lane_udivrem(&ma, &mb, &mut fb.quo, &mut fb.rem, &mut fb.diff);
    fb.ma = ma;
    fb.mb = mb;
    let bz = !fb.mb.iter().fold(0u64, |m, &x| m | x);
    let (src, flip) = match op {
        BinOp::SDiv => (&fb.quo, sa ^ sb),
        _ => (&fb.rem, sa),
    };
    lane_neg(&mut fb.diff, src);
    for (o, (&v, &n)) in out.iter_mut().zip(src.iter().zip(fb.diff.iter())) {
        *o = (flip & n) | (!flip & v);
    }
    if op == BinOp::SDiv {
        // sdiv by zero is all-ones regardless of the dividend's sign.
        for o in out.iter_mut() {
            *o |= bz;
        }
    }
}

/// Lane-parallel negate: `out = -a` per lane, as `!a + 1`.
fn lane_neg(out: &mut [u64], a: &[u64]) {
    let mut c = u64::MAX;
    for (d, &x) in out.iter_mut().zip(a) {
        let s = !x;
        *d = s ^ c;
        c &= s;
    }
}

/// Per-lane `a != b` mask.
fn lane_ne(a: &[u64], b: &[u64]) -> u64 {
    a.iter().zip(b).fold(0, |m, (&x, &y)| m | (x ^ y))
}

/// Per-lane unsigned `a < b` mask, LSB-to-MSB.
fn lane_ult(a: &[u64], b: &[u64]) -> u64 {
    let mut lt = 0u64;
    for (&x, &y) in a.iter().zip(b) {
        lt = (!x & y) | (!(x ^ y) & lt);
    }
    lt
}

/// Per-lane signed `a < b` mask (two's complement).
fn lane_slt(a: &[u64], b: &[u64]) -> u64 {
    let (sa, sb) = (a[a.len() - 1], b[b.len() - 1]);
    (sa & !sb) | (!(sa ^ sb) & lane_ult(a, b))
}

fn sized(scratch: &mut Vec<u64>, width: u32) {
    scratch.clear();
    scratch.resize(width as usize, 0);
}

fn write_diff(out: &mut [u64], new: &[u64]) -> bool {
    if out == new {
        false
    } else {
        out.copy_from_slice(new);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::sim::Simulator;
    use dfv_bits::SplitMix64;

    fn counter_with_enable() -> Module {
        let mut b = ModuleBuilder::new("ctr");
        let en = b.input("en", 1);
        let r = b.reg("count", 8, Bv::zero(8));
        let q = b.reg_q(r);
        let one = b.lit(8, 1);
        let next = b.add(q, one);
        b.connect_reg(r, next);
        b.reg_enable(r, en);
        b.output("count", q);
        b.finish().unwrap()
    }

    #[test]
    fn lanes_count_independently() {
        let mut sim = LaneSim::new(counter_with_enable()).unwrap();
        // Even lanes enabled, odd lanes disabled.
        for lane in 0..LANES {
            sim.poke_lane("en", lane, Bv::from_bool(lane % 2 == 0));
        }
        for _ in 0..5 {
            sim.step();
        }
        for lane in 0..LANES {
            let expect = if lane % 2 == 0 { 5 } else { 0 };
            assert_eq!(
                sim.output_lane("count", lane).to_u64(),
                expect,
                "lane {lane}"
            );
        }
    }

    #[test]
    fn one_dispatch_covers_all_lanes() {
        let mut sim = LaneSim::new(counter_with_enable()).unwrap();
        sim.poke_splat("en", Bv::from_bool(true));
        sim.step();
        let evals = sim.stats().node_evals;
        // The batched engine never exceeds one dispatch per node per pass,
        // regardless of how many lanes are active.
        assert!(evals <= sim.stats().eval_passes * sim.module().nodes.len() as u64);
        assert_eq!(sim.stats().lane_fallback_evals, 0);
    }

    #[test]
    fn idle_lanes_cost_nothing() {
        let mut sim = LaneSim::new(counter_with_enable()).unwrap();
        sim.poke_splat("en", Bv::from_bool(false));
        assert_eq!(sim.output_lane("count", 0).to_u64(), 0);
        let settled = sim.stats().node_evals;
        for _ in 0..50 {
            sim.step();
        }
        assert_eq!(sim.stats().node_evals, settled, "idle lanes re-evaluated");
        // Re-poking the same per-lane value is also free.
        sim.poke_lane("en", 7, Bv::from_bool(false));
        sim.eval();
        assert_eq!(sim.stats().node_evals, settled);
    }

    #[test]
    fn division_ops_match_scalar_per_lane() {
        // All four division-class ops now run the lane-domain restoring
        // divider — no per-lane oracle fallback remains. Check every op
        // against 64 scalar runs, with divide-by-zero lanes included.
        let mut b = ModuleBuilder::new("hard");
        let x = b.input("x", 32);
        let y = b.input("y", 32);
        let m = b.mul(x, y);
        let ud = b.udiv(x, y);
        let ur = b.urem(x, y);
        let sd = b.sdiv(x, y);
        let sr = b.srem(x, y);
        let sh = b.shl(x, y);
        b.output("m", m);
        b.output("ud", ud);
        b.output("ur", ur);
        b.output("sd", sd);
        b.output("sr", sr);
        b.output("sh", sh);
        let module = b.finish().unwrap();

        let mut rng = SplitMix64::new(0x1A7E);
        let mut lane_sim = LaneSim::new(module.clone()).unwrap();
        let stim: Vec<(Bv, Bv)> = (0..LANES)
            .map(|lane| {
                let y = match lane % 4 {
                    0 => 0, // divide-by-zero lanes
                    1 => rng.next_u64() & 0x3F,
                    _ => rng.next_u64() & 0xFFFF_FFFF, // incl. negatives
                };
                (
                    Bv::from_u64(32, rng.next_u64() & 0xFFFF_FFFF),
                    Bv::from_u64(32, y),
                )
            })
            .collect();
        for (lane, (xv, yv)) in stim.iter().enumerate() {
            lane_sim.poke_lane("x", lane, xv.clone());
            lane_sim.poke_lane("y", lane, yv.clone());
        }
        lane_sim.eval();
        assert_eq!(
            lane_sim.stats().lane_fallback_evals,
            0,
            "division must slice"
        );
        for (lane, (xv, yv)) in stim.iter().enumerate() {
            let mut scalar = Simulator::new(module.clone()).unwrap();
            scalar.poke("x", xv.clone());
            scalar.poke("y", yv.clone());
            for port in ["m", "ud", "ur", "sd", "sr", "sh"] {
                assert_eq!(
                    lane_sim.output_lane(port, lane),
                    scalar.output(port),
                    "{port} lane {lane}: {xv} op {yv}"
                );
            }
        }
    }

    #[test]
    fn lane_divider_corner_cases_match_bv_oracle() {
        // INT_MIN / -1, x / 0, 0 / x, x % larger — the divider's signed
        // patch-up and the overflow-bit compare, pinned against eval_bin
        // at a width that crosses a limb boundary on the magnitude path.
        let mut b = ModuleBuilder::new("corners");
        let x = b.input("x", 8);
        let y = b.input("y", 8);
        for (name, n) in [
            ("ud", b.udiv(x, y)),
            ("ur", b.urem(x, y)),
            ("sd", b.sdiv(x, y)),
            ("sr", b.srem(x, y)),
        ] {
            b.output(name, n);
        }
        let module = b.finish().unwrap();
        let cases: [(u64, u64); 8] = [
            (0x80, 0xFF), // INT_MIN / -1 wraps
            (0x80, 0x01),
            (0x7F, 0x80),
            (0xAB, 0x00), // by zero
            (0x00, 0x00),
            (0x00, 0xC3),
            (0x05, 0x0D), // dividend < divisor
            (0xFE, 0x02),
        ];
        let mut sim = LaneSim::new(module).unwrap();
        for (lane, &(xv, yv)) in cases.iter().cycle().take(LANES).enumerate() {
            sim.poke_lane("x", lane, Bv::from_u64(8, xv));
            sim.poke_lane("y", lane, Bv::from_u64(8, yv));
        }
        for (lane, &(xv, yv)) in cases.iter().cycle().take(LANES).enumerate() {
            let (a, b) = (Bv::from_u64(8, xv), Bv::from_u64(8, yv));
            for (port, op) in [
                ("ud", BinOp::UDiv),
                ("ur", BinOp::URem),
                ("sd", BinOp::SDiv),
                ("sr", BinOp::SRem),
            ] {
                assert_eq!(
                    sim.output_lane(port, lane),
                    crate::sim::eval_bin(op, &a, &b),
                    "{port} lane {lane}: {xv:#x} op {yv:#x}"
                );
            }
        }
        assert_eq!(sim.stats().lane_fallback_evals, 0);
    }

    #[test]
    fn set_reg_lane_overrides_one_lane() {
        let mut sim = LaneSim::new(counter_with_enable()).unwrap();
        sim.poke_splat("en", Bv::from_bool(true));
        sim.set_reg_lane("count", 3, Bv::from_u64(8, 100));
        assert_eq!(sim.output_lane("count", 3).to_u64(), 100);
        assert_eq!(sim.output_lane("count", 2).to_u64(), 0);
        sim.step();
        assert_eq!(sim.output_lane("count", 3).to_u64(), 101);
        assert_eq!(sim.output_lane("count", 2).to_u64(), 1);
    }

    #[test]
    fn sliced_multiply_matches_scalar_across_limb_boundaries() {
        // The shift-add mul kernel is a lane-able fast path, not an
        // oracle call — pin it against the scalar engine at a width that
        // crosses a limb boundary, with full-width random operands.
        let mut b = ModuleBuilder::new("widemul");
        let x = b.input("x", 70);
        let y = b.input("y", 70);
        let m = b.mul(x, y);
        b.output("m", m);
        let module = b.finish().unwrap();

        let mut rng = SplitMix64::new(0x070D_5EED);
        let rand_bv = |rng: &mut SplitMix64| {
            let lo = Bv::from_u64(64, rng.next_u64());
            Bv::from_u64(6, rng.next_u64() & 0x3F).concat(&lo)
        };
        let mut lane_sim = LaneSim::new(module.clone()).unwrap();
        let stim: Vec<(Bv, Bv)> = (0..LANES)
            .map(|_| (rand_bv(&mut rng), rand_bv(&mut rng)))
            .collect();
        for (lane, (xv, yv)) in stim.iter().enumerate() {
            lane_sim.poke_lane("x", lane, xv.clone());
            lane_sim.poke_lane("y", lane, yv.clone());
        }
        lane_sim.eval();
        assert_eq!(lane_sim.stats().lane_fallback_evals, 0, "mul must slice");
        for (lane, (xv, yv)) in stim.iter().enumerate() {
            let mut scalar = Simulator::new(module.clone()).unwrap();
            scalar.poke("x", xv.clone());
            scalar.poke("y", yv.clone());
            assert_eq!(
                lane_sim.output_lane("m", lane),
                scalar.output("m"),
                "lane {lane}: {} * {}",
                xv,
                yv
            );
        }
    }

    #[test]
    fn per_lane_memories_are_independent() {
        let mut b = ModuleBuilder::new("memtest");
        let we = b.input("we", 1);
        let waddr = b.input("waddr", 4);
        let wdata = b.input("wdata", 8);
        let raddr = b.input("raddr", 4);
        let mem = b.mem("m", 4, 8, 16);
        b.mem_write(mem, we, waddr, wdata);
        let rdata = b.mem_read(mem, raddr);
        b.output("rdata", rdata);
        let mut sim = LaneSim::new(b.finish().unwrap()).unwrap();

        // Each lane writes its own value to its own address.
        for lane in 0..LANES {
            sim.poke_lane("we", lane, Bv::from_bool(true));
            sim.poke_lane("waddr", lane, Bv::from_u64(4, lane as u64 % 16));
            sim.poke_lane("wdata", lane, Bv::from_u64(8, lane as u64 + 1));
            sim.poke_lane("raddr", lane, Bv::from_u64(4, lane as u64 % 16));
        }
        sim.step();
        // Read-first: the same-edge read saw the old (zero) word.
        for lane in 0..LANES {
            assert_eq!(sim.output_lane("rdata", lane).to_u64(), 0, "lane {lane}");
        }
        sim.poke_splat("we", Bv::from_bool(false));
        sim.step();
        for lane in 0..LANES {
            assert_eq!(
                sim.output_lane("rdata", lane).to_u64(),
                lane as u64 + 1,
                "lane {lane}"
            );
        }
    }

    #[test]
    fn lane_sim_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<LaneSim>();
    }
}
