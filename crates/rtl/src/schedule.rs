//! The precompiled evaluation schedule behind [`crate::Simulator`].
//!
//! Instead of re-interpreting the [`Module`] graph on every pass, the
//! simulator builds a [`SimSchedule`] once per module:
//!
//! * a **flat limb arena layout** — every register, memory read register,
//!   and combinational node gets a fixed `u64`-limb slot, so evaluation
//!   writes values in place with zero per-node allocation;
//! * **compiled kernels** — one [`Kernel`] per node with operand slot
//!   offsets and widths resolved at build time, with single-limb
//!   (`width <= 64`) fast paths for every operator that skip the generic
//!   limb loops ([`crate::eval_bin`] / [`crate::eval_un`] remain the
//!   semantic oracle; the fast paths are differential-tested against
//!   them);
//! * a **levelized order plus static fanout map** (the forward complement
//!   of [`crate::cone`]'s fan-in traversal) so evaluation can walk just
//!   the fanout cone of what actually changed, in dependency order.

use dfv_bits::limbs::{self, limbs_for};
use dfv_bits::Bv;

use crate::cone::FanoutMap;
use crate::ir::{BinOp, Module, Node, NodeId, UnOp};
use crate::sim::eval_bin;

/// One fixed arena slot.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Slot {
    /// Offset into the value arena, in limbs.
    pub off: u32,
    /// Width in bits.
    pub width: u32,
    /// Length in limbs (`ceil(width / 64)`, cached).
    pub limbs: u32,
}

/// A compiled evaluation kernel: the node's operator with every operand
/// resolved to an arena slot offset.
#[derive(Debug, Clone)]
enum Kernel {
    /// Copy the current value of input port `.0`.
    Input(usize),
    /// Nothing to do — the constant is written into its slot at reset and
    /// never changes.
    Const,
    /// Copy from another slot of the same width (register Q, memory read
    /// data).
    Copy {
        a: u32,
    },
    Un {
        op: UnOp,
        a: u32,
        aw: u32,
    },
    Bin {
        op: BinOp,
        a: u32,
        aw: u32,
        b: u32,
        bw: u32,
    },
    Mux {
        sel: u32,
        t: u32,
        f: u32,
    },
    Slice {
        a: u32,
        aw: u32,
        lo: u32,
    },
    Concat {
        a: u32,
        aw: u32,
        b: u32,
        bw: u32,
    },
    Zext {
        a: u32,
        aw: u32,
    },
    Sext {
        a: u32,
        aw: u32,
    },
}

/// The precompiled evaluation schedule of one flat [`Module`]. Built once
/// by [`crate::Simulator::new`]; immutable afterwards and shared by every
/// evaluation pass.
#[derive(Debug, Clone)]
pub struct SimSchedule {
    /// Arena slot per node, indexed by node id.
    slots: Vec<Slot>,
    /// Compiled kernel per node.
    kernels: Vec<Kernel>,
    /// Topological level per node (sources at 0; every operand has a
    /// strictly smaller level than its consumer).
    level: Vec<u32>,
    /// Number of distinct levels (0 for an empty graph).
    num_levels: u32,
    /// All node ids sorted by (level, id) — the full-pass order.
    order: Vec<u32>,
    /// Static node-to-node fanout map.
    fanout: FanoutMap,
    /// Per input port: the `Node::Input` node ids reading it.
    input_nodes: Vec<Vec<u32>>,
    /// Per register: the `Node::RegQ` node ids reading it.
    reg_nodes: Vec<Vec<u32>>,
    /// Per memory, per read port: the `Node::MemReadData` node ids.
    mem_read_nodes: Vec<Vec<Vec<u32>>>,
    /// Arena slot per register (current value).
    reg_slots: Vec<Slot>,
    /// Arena slot per memory read register.
    mem_rd_slots: Vec<Vec<Slot>>,
    /// Per memory: base offset into the memory arena and per-word stride.
    mem_layout: Vec<(u32, u32)>,
    /// Length of the state region (registers + memory read registers) at
    /// the bottom of the arena, in limbs; node slots start here.
    state_len: usize,
    /// Total main-arena length in limbs.
    arena_len: usize,
    /// Total memory-arena length in limbs.
    mem_arena_len: usize,
    /// Largest slot, in limbs (scratch sizing).
    max_limbs: usize,
}

impl SimSchedule {
    /// Compiles `module` (which must be flat and checked) into a schedule.
    pub fn build(module: &Module) -> Self {
        let n = module.nodes.len();
        let mut off = 0u32;
        let mut max_limbs = 1usize;
        let slot_at = |width: u32, off: &mut u32, max: &mut usize| {
            let l = limbs_for(width) as u32;
            let s = Slot {
                off: *off,
                width,
                limbs: l,
            };
            *off += l;
            *max = (*max).max(l as usize);
            s
        };

        // Layout: registers and memory read registers first, then nodes in
        // id order — so a node's operands (smaller ids, or state slots)
        // always sit strictly below its own slot and `split_at_mut` can
        // hand out operand reads and the result write simultaneously.
        let reg_slots: Vec<Slot> = module
            .regs
            .iter()
            .map(|r| slot_at(r.width, &mut off, &mut max_limbs))
            .collect();
        let mem_rd_slots: Vec<Vec<Slot>> = module
            .mems
            .iter()
            .map(|m| {
                m.read_ports
                    .iter()
                    .map(|_| slot_at(m.data_width, &mut off, &mut max_limbs))
                    .collect()
            })
            .collect();
        let state_len = off as usize;
        let slots: Vec<Slot> = module
            .node_widths
            .iter()
            .map(|&w| slot_at(w, &mut off, &mut max_limbs))
            .collect();
        let arena_len = off as usize;

        let mut mem_layout = Vec::with_capacity(module.mems.len());
        let mut mem_off = 0u32;
        for m in &module.mems {
            let stride = limbs_for(m.data_width) as u32;
            mem_layout.push((mem_off, stride));
            mem_off += stride * m.depth as u32;
            max_limbs = max_limbs.max(stride as usize);
        }
        let mem_arena_len = mem_off as usize;

        // Kernels, source maps, and levels in one pass over the nodes.
        let mut kernels = Vec::with_capacity(n);
        let mut level = vec![0u32; n];
        let mut input_nodes = vec![Vec::new(); module.inputs.len()];
        let mut reg_nodes = vec![Vec::new(); module.regs.len()];
        let mut mem_read_nodes: Vec<Vec<Vec<u32>>> = module
            .mems
            .iter()
            .map(|m| vec![Vec::new(); m.read_ports.len()])
            .collect();
        let so = |id: &NodeId| slots[id.index()].off;
        let sw = |id: &NodeId| slots[id.index()].width;
        for (i, node) in module.nodes.iter().enumerate() {
            let mut lvl = 0u32;
            let mut dep = |id: &NodeId| lvl = lvl.max(level[id.index()] + 1);
            let kernel = match node {
                Node::Input(idx) => {
                    input_nodes[*idx].push(i as u32);
                    Kernel::Input(*idx)
                }
                Node::Const(_) => Kernel::Const,
                Node::RegQ(r) => {
                    reg_nodes[r.index()].push(i as u32);
                    Kernel::Copy {
                        a: reg_slots[r.index()].off,
                    }
                }
                Node::MemReadData(m, p) => {
                    mem_read_nodes[m.index()][*p].push(i as u32);
                    Kernel::Copy {
                        a: mem_rd_slots[m.index()][*p].off,
                    }
                }
                Node::InstOut(..) => unreachable!("schedule requires a flat module"),
                Node::Un(op, a) => {
                    dep(a);
                    Kernel::Un {
                        op: *op,
                        a: so(a),
                        aw: sw(a),
                    }
                }
                Node::Bin(op, a, b) => {
                    dep(a);
                    dep(b);
                    Kernel::Bin {
                        op: *op,
                        a: so(a),
                        aw: sw(a),
                        b: so(b),
                        bw: sw(b),
                    }
                }
                Node::Mux { sel, t, f } => {
                    dep(sel);
                    dep(t);
                    dep(f);
                    Kernel::Mux {
                        sel: so(sel),
                        t: so(t),
                        f: so(f),
                    }
                }
                Node::Slice { src, lo, .. } => {
                    dep(src);
                    Kernel::Slice {
                        a: so(src),
                        aw: sw(src),
                        lo: *lo,
                    }
                }
                Node::Concat(a, b) => {
                    dep(a);
                    dep(b);
                    Kernel::Concat {
                        a: so(a),
                        aw: sw(a),
                        b: so(b),
                        bw: sw(b),
                    }
                }
                Node::Zext(a, _) => {
                    dep(a);
                    Kernel::Zext {
                        a: so(a),
                        aw: sw(a),
                    }
                }
                Node::Sext(a, _) => {
                    dep(a);
                    Kernel::Sext {
                        a: so(a),
                        aw: sw(a),
                    }
                }
            };
            kernels.push(kernel);
            level[i] = lvl;
        }
        let num_levels = level.iter().max().map_or(0, |&m| m + 1);
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by_key(|&i| (level[i as usize], i));

        SimSchedule {
            slots,
            kernels,
            level,
            num_levels,
            order,
            fanout: FanoutMap::build(module),
            input_nodes,
            reg_nodes,
            mem_read_nodes,
            reg_slots,
            mem_rd_slots,
            mem_layout,
            state_len,
            arena_len,
            mem_arena_len,
            max_limbs,
        }
    }

    /// Number of topological levels.
    pub fn num_levels(&self) -> u32 {
        self.num_levels
    }

    /// The level of a node (sources at 0).
    pub fn level(&self, node: NodeId) -> u32 {
        self.level[node.index()]
    }

    /// Total combinational node-to-node edges in the fanout map.
    pub fn edge_count(&self) -> usize {
        self.fanout.edge_count()
    }

    pub(crate) fn level_raw(&self, n: u32) -> u32 {
        self.level[n as usize]
    }

    pub(crate) fn order(&self) -> &[u32] {
        &self.order
    }

    pub(crate) fn fanouts(&self, n: u32) -> &[NodeId] {
        self.fanout.fanouts(NodeId(n))
    }

    pub(crate) fn node_slot(&self, n: usize) -> Slot {
        self.slots[n]
    }

    pub(crate) fn reg_slot(&self, r: usize) -> Slot {
        self.reg_slots[r]
    }

    pub(crate) fn mem_rd_slot(&self, m: usize, p: usize) -> Slot {
        self.mem_rd_slots[m][p]
    }

    /// Base offset and per-word stride of a memory in the memory arena.
    pub(crate) fn mem_layout(&self, m: usize) -> (u32, u32) {
        self.mem_layout[m]
    }

    pub(crate) fn input_nodes(&self, idx: usize) -> &[u32] {
        &self.input_nodes[idx]
    }

    pub(crate) fn reg_nodes(&self, r: usize) -> &[u32] {
        &self.reg_nodes[r]
    }

    pub(crate) fn mem_read_nodes(&self, m: usize, p: usize) -> &[u32] {
        &self.mem_read_nodes[m][p]
    }

    pub(crate) fn state_len(&self) -> usize {
        self.state_len
    }

    pub(crate) fn arena_len(&self) -> usize {
        self.arena_len
    }

    pub(crate) fn mem_arena_len(&self) -> usize {
        self.mem_arena_len
    }

    pub(crate) fn max_limbs(&self) -> usize {
        self.max_limbs
    }

    /// Evaluates node `n` in place, reading operands from and writing the
    /// result into `arena`. Returns whether the node's value changed.
    ///
    /// `inputs` are the current input-port values; `scratch` is a reusable
    /// buffer for multi-limb intermediate results (no allocation once it
    /// has grown to the widest slot).
    pub(crate) fn eval_node(
        &self,
        n: usize,
        arena: &mut [u64],
        inputs: &[Bv],
        scratch: &mut Vec<u64>,
    ) -> bool {
        let slot = self.slots[n];
        let ow = slot.width;
        let (lo, hi) = arena.split_at_mut(slot.off as usize);
        let out = &mut hi[..slot.limbs as usize];
        let rd = |off: u32, nl: u32| &lo[off as usize..(off + nl) as usize];
        match &self.kernels[n] {
            Kernel::Input(idx) => write_diff(out, inputs[*idx].limbs()),
            Kernel::Const => false,
            Kernel::Copy { a } => write_diff(out, rd(*a, slot.limbs)),
            Kernel::Un { op, a, aw } => {
                let al = limbs_for(*aw) as u32;
                if al == 1 && slot.limbs == 1 {
                    return write1(out, eval_un1(*op, lo[*a as usize], *aw));
                }
                let av = rd(*a, al);
                match op {
                    UnOp::Not => {
                        sized(scratch, slot.limbs);
                        limbs::not(scratch, av, ow);
                        write_diff(out, scratch)
                    }
                    UnOp::Neg => {
                        sized(scratch, slot.limbs);
                        limbs::neg(scratch, av, ow);
                        write_diff(out, scratch)
                    }
                    UnOp::RedAnd => write1(out, limbs::is_ones(av, *aw) as u64),
                    UnOp::RedOr => write1(out, !limbs::is_zero(av) as u64),
                    UnOp::RedXor => write1(out, limbs::red_xor(av) as u64),
                }
            }
            Kernel::Bin { op, a, aw, b, bw } => {
                let (al, bl) = (limbs_for(*aw) as u32, limbs_for(*bw) as u32);
                if al == 1 && bl == 1 && slot.limbs == 1 {
                    return write1(
                        out,
                        eval_bin1(*op, lo[*a as usize], *aw, lo[*b as usize], *bw),
                    );
                }
                let (av, bv) = (
                    &lo[*a as usize..(*a + al) as usize],
                    &lo[*b as usize..(*b + bl) as usize],
                );
                match op {
                    BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Add | BinOp::Sub => {
                        sized(scratch, slot.limbs);
                        match op {
                            BinOp::And => limbs::and(scratch, av, bv),
                            BinOp::Or => limbs::or(scratch, av, bv),
                            BinOp::Xor => limbs::xor(scratch, av, bv),
                            BinOp::Add => limbs::add(scratch, av, bv, ow),
                            BinOp::Sub => limbs::sub(scratch, av, bv, ow),
                            _ => unreachable!(),
                        }
                        write_diff(out, scratch)
                    }
                    BinOp::Eq => write1(out, (av == bv) as u64),
                    BinOp::Ne => write1(out, (av != bv) as u64),
                    BinOp::ULt => write1(out, limbs::ult(av, bv) as u64),
                    BinOp::ULe => write1(out, !limbs::ult(bv, av) as u64),
                    BinOp::SLt => write1(out, limbs::slt(av, bv, *aw) as u64),
                    BinOp::SLe => write1(out, !limbs::slt(bv, av, *aw) as u64),
                    // The rare wide hard ops go through the Bv oracle — the
                    // only remaining allocating path, kept deliberately
                    // identical to the reference semantics.
                    BinOp::Mul
                    | BinOp::UDiv
                    | BinOp::URem
                    | BinOp::SDiv
                    | BinOp::SRem
                    | BinOp::Shl
                    | BinOp::LShr
                    | BinOp::AShr => {
                        let r = eval_bin(*op, &Bv::from_limbs(*aw, av), &Bv::from_limbs(*bw, bv));
                        write_diff(out, r.limbs())
                    }
                }
            }
            Kernel::Mux { sel, t, f } => {
                let src = if lo[*sel as usize] & 1 == 1 { *t } else { *f };
                write_diff(out, rd(src, slot.limbs))
            }
            Kernel::Slice { a, aw, lo: low } => {
                let al = limbs_for(*aw) as u32;
                if al == 1 && slot.limbs == 1 {
                    return write1(out, (lo[*a as usize] >> low) & mask64(ow));
                }
                sized(scratch, slot.limbs);
                limbs::slice(scratch, rd(*a, al), low + ow - 1, *low);
                write_diff(out, scratch)
            }
            Kernel::Concat { a, aw, b, bw } => {
                let (al, bl) = (limbs_for(*aw) as u32, limbs_for(*bw) as u32);
                if slot.limbs == 1 {
                    return write1(out, (lo[*a as usize] << bw) | lo[*b as usize]);
                }
                sized(scratch, slot.limbs);
                limbs::concat(
                    scratch,
                    rd(*a, al),
                    *aw,
                    &lo[*b as usize..(*b + bl) as usize],
                    *bw,
                );
                write_diff(out, scratch)
            }
            Kernel::Zext { a, aw } => {
                let al = limbs_for(*aw) as u32;
                if slot.limbs == 1 {
                    return write1(out, lo[*a as usize]);
                }
                sized(scratch, slot.limbs);
                limbs::zext(scratch, rd(*a, al));
                write_diff(out, scratch)
            }
            Kernel::Sext { a, aw } => {
                let al = limbs_for(*aw) as u32;
                if slot.limbs == 1 {
                    return write1(out, (sext_u64(lo[*a as usize], *aw) as u64) & mask64(ow));
                }
                sized(scratch, slot.limbs);
                limbs::sext(scratch, rd(*a, al), *aw, ow);
                write_diff(out, scratch)
            }
        }
    }
}

fn sized(scratch: &mut Vec<u64>, limbs: u32) {
    scratch.clear();
    scratch.resize(limbs as usize, 0);
}

fn write_diff(out: &mut [u64], new: &[u64]) -> bool {
    if out == new {
        false
    } else {
        out.copy_from_slice(new);
        true
    }
}

fn write1(out: &mut [u64], new: u64) -> bool {
    if out[0] == new {
        false
    } else {
        out[0] = new;
        true
    }
}

/// The low-`w` mask (`w <= 64`).
fn mask64(w: u32) -> u64 {
    if w >= 64 {
        u64::MAX
    } else {
        (1u64 << w) - 1
    }
}

/// Sign-extends the low `w` bits of `v` to all 64 (`1 <= w <= 64`).
fn sext_u64(v: u64, w: u32) -> i64 {
    let shift = 64 - w;
    ((v << shift) as i64) >> shift
}

/// Single-limb fast path of [`crate::eval_bin`]: both operands and the
/// result fit in one limb. `a`/`b` hold masked `aw`/`bw`-bit values.
pub(crate) fn eval_bin1(op: BinOp, a: u64, aw: u32, b: u64, bw: u32) -> u64 {
    match op {
        BinOp::Add => a.wrapping_add(b) & mask64(aw),
        BinOp::Sub => a.wrapping_sub(b) & mask64(aw),
        BinOp::Mul => a.wrapping_mul(b) & mask64(aw),
        BinOp::UDiv => a.checked_div(b).unwrap_or(mask64(aw)),
        BinOp::URem => a.checked_rem(b).unwrap_or(a),
        BinOp::SDiv => {
            if b == 0 {
                mask64(aw)
            } else {
                (sext_u64(a, aw).wrapping_div(sext_u64(b, bw)) as u64) & mask64(aw)
            }
        }
        BinOp::SRem => {
            if b == 0 {
                a
            } else {
                (sext_u64(a, aw).wrapping_rem(sext_u64(b, bw)) as u64) & mask64(aw)
            }
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => {
            if b >= aw as u64 {
                0
            } else {
                (a << b) & mask64(aw)
            }
        }
        BinOp::LShr => {
            if b >= aw as u64 {
                0
            } else {
                a >> b
            }
        }
        BinOp::AShr => {
            let s = sext_u64(a, aw);
            let amt = b.min(63);
            ((s >> amt) as u64) & mask64(aw)
        }
        BinOp::Eq => (a == b) as u64,
        BinOp::Ne => (a != b) as u64,
        BinOp::ULt => (a < b) as u64,
        BinOp::ULe => (a <= b) as u64,
        BinOp::SLt => (sext_u64(a, aw) < sext_u64(b, bw)) as u64,
        BinOp::SLe => (sext_u64(a, aw) <= sext_u64(b, bw)) as u64,
    }
}

/// Single-limb fast path of [`crate::eval_un`].
pub(crate) fn eval_un1(op: UnOp, a: u64, aw: u32) -> u64 {
    match op {
        UnOp::Not => !a & mask64(aw),
        UnOp::Neg => a.wrapping_neg() & mask64(aw),
        UnOp::RedAnd => (a == mask64(aw)) as u64,
        UnOp::RedOr => (a != 0) as u64,
        UnOp::RedXor => (a.count_ones() & 1) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::sim::eval_un;
    use dfv_bits::SplitMix64;

    const BIN_OPS: [BinOp; 19] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::UDiv,
        BinOp::URem,
        BinOp::SDiv,
        BinOp::SRem,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Shl,
        BinOp::LShr,
        BinOp::AShr,
        BinOp::Eq,
        BinOp::Ne,
        BinOp::ULt,
        BinOp::ULe,
        BinOp::SLt,
        BinOp::SLe,
    ];
    const UN_OPS: [UnOp; 5] = [
        UnOp::Not,
        UnOp::Neg,
        UnOp::RedAnd,
        UnOp::RedOr,
        UnOp::RedXor,
    ];

    /// The single-limb kernels against the `Bv` oracle, over every
    /// operator, a width ladder, and seeded + adversarial values.
    #[test]
    fn single_limb_kernels_match_oracle() {
        let mut rng = SplitMix64::new(0xFA57);
        for &w in &[1u32, 2, 7, 8, 31, 32, 33, 63, 64] {
            let mut values = vec![0u64, 1, mask64(w), mask64(w) >> 1, 1u64 << (w - 1) >> 1];
            values.push(1u64 << (w - 1)); // sign bit alone (INT_MIN)
            for _ in 0..40 {
                values.push(rng.next_u64() & mask64(w));
            }
            for &a in &values {
                for &b in &values {
                    let (av, bv) = (Bv::from_u64(w, a), Bv::from_u64(w, b));
                    for op in BIN_OPS {
                        let expect = eval_bin(op, &av, &bv);
                        let got = eval_bin1(op, a, w, b, w);
                        assert_eq!(
                            got,
                            expect.to_u64(),
                            "{op:?} w={w} a={a:#x} b={b:#x} (oracle {expect:?})"
                        );
                    }
                    for op in UN_OPS {
                        let expect = eval_un(op, &av);
                        assert_eq!(eval_un1(op, a, w), expect.to_u64(), "{op:?} w={w} a={a:#x}");
                    }
                }
            }
        }
    }

    /// Shift amounts live on a differently-sized right operand; sweep the
    /// boundary around the data width, including amounts above 64.
    #[test]
    fn single_limb_shift_amount_boundaries() {
        for &w in &[1u32, 8, 63, 64] {
            for amt in [0u64, 1, w as u64 - 1, w as u64, w as u64 + 1, 64, 65, 1000] {
                let bw = 16;
                if amt > mask64(bw) {
                    continue;
                }
                for a in [1u64, mask64(w), 1u64 << (w - 1)] {
                    let (av, bv) = (Bv::from_u64(w, a), Bv::from_u64(bw, amt));
                    for op in [BinOp::Shl, BinOp::LShr, BinOp::AShr] {
                        assert_eq!(
                            eval_bin1(op, a, w, amt, bw),
                            eval_bin(op, &av, &bv).to_u64(),
                            "{op:?} w={w} a={a:#x} amt={amt}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn schedule_levels_respect_dependencies() {
        let mut b = ModuleBuilder::new("lvl");
        let x = b.input("x", 8);
        let y = b.input("y", 8);
        let s = b.add(x, y);
        let t = b.mul(s, y);
        let u = b.not(t);
        b.output("u", u);
        let m = b.finish().unwrap();
        let sched = SimSchedule::build(&m);
        assert_eq!(sched.level(x), 0);
        assert_eq!(sched.level(s), 1);
        assert_eq!(sched.level(t), 2);
        assert_eq!(sched.level(u), 3);
        assert_eq!(sched.num_levels(), 4);
        // The full-pass order is level-sorted and covers every node.
        let order = sched.order();
        assert_eq!(order.len(), m.nodes.len());
        assert!(order
            .windows(2)
            .all(|w| sched.level_raw(w[0]) <= sched.level_raw(w[1])));
    }
}
