//! A line-oriented text netlist format for [`Design`]s and [`Module`]s.
//!
//! The format is the workspace's interchange representation — the analogue
//! of passing Verilog between tools. It is deliberately simple: one
//! declaration per line, nodes in id order, `#` comments.
//!
//! ```text
//! module counter
//!   input en 1
//!   output count 8
//!   reg count_r 8 8'h00
//!   n0 = input 0 : 1
//!   n1 = regq 0 : 8
//!   n2 = const 8'h01 : 8
//!   n3 = add n1 n2 : 8
//!   next 0 n3
//!   enable 0 n0
//!   drive 0 n1
//! end
//! ```

use std::fmt::Write as _;

use dfv_bits::Bv;

use crate::check::check_module;
use crate::ir::{
    BinOp, Design, InstId, Instance, Mem, MemId, Module, Node, NodeId, Port, ReadPort, Reg, RegId,
    UnOp, WritePort,
};
use crate::RtlError;

fn binop_name(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "add",
        BinOp::Sub => "sub",
        BinOp::Mul => "mul",
        BinOp::UDiv => "udiv",
        BinOp::URem => "urem",
        BinOp::SDiv => "sdiv",
        BinOp::SRem => "srem",
        BinOp::And => "and",
        BinOp::Or => "or",
        BinOp::Xor => "xor",
        BinOp::Shl => "shl",
        BinOp::LShr => "lshr",
        BinOp::AShr => "ashr",
        BinOp::Eq => "eq",
        BinOp::Ne => "ne",
        BinOp::ULt => "ult",
        BinOp::ULe => "ule",
        BinOp::SLt => "slt",
        BinOp::SLe => "sle",
    }
}

fn binop_from(name: &str) -> Option<BinOp> {
    Some(match name {
        "add" => BinOp::Add,
        "sub" => BinOp::Sub,
        "mul" => BinOp::Mul,
        "udiv" => BinOp::UDiv,
        "urem" => BinOp::URem,
        "sdiv" => BinOp::SDiv,
        "srem" => BinOp::SRem,
        "and" => BinOp::And,
        "or" => BinOp::Or,
        "xor" => BinOp::Xor,
        "shl" => BinOp::Shl,
        "lshr" => BinOp::LShr,
        "ashr" => BinOp::AShr,
        "eq" => BinOp::Eq,
        "ne" => BinOp::Ne,
        "ult" => BinOp::ULt,
        "ule" => BinOp::ULe,
        "slt" => BinOp::SLt,
        "sle" => BinOp::SLe,
        _ => return None,
    })
}

fn unop_name(op: UnOp) -> &'static str {
    match op {
        UnOp::Not => "not",
        UnOp::Neg => "neg",
        UnOp::RedAnd => "redand",
        UnOp::RedOr => "redor",
        UnOp::RedXor => "redxor",
    }
}

fn unop_from(name: &str) -> Option<UnOp> {
    Some(match name {
        "not" => UnOp::Not,
        "neg" => UnOp::Neg,
        "redand" => UnOp::RedAnd,
        "redor" => UnOp::RedOr,
        "redxor" => UnOp::RedXor,
        _ => return None,
    })
}

/// Serializes a module to the text netlist format.
pub fn write_module(m: &Module) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "module {}", m.name);
    for p in &m.inputs {
        let _ = writeln!(s, "  input {} {}", p.name, p.width);
    }
    for p in &m.outputs {
        let _ = writeln!(s, "  output {} {}", p.name, p.width);
    }
    for r in &m.regs {
        let _ = writeln!(s, "  reg {} {} {}", r.name, r.width, r.init);
    }
    for mem in &m.mems {
        let _ = write!(
            s,
            "  mem {} {} {} {}",
            mem.name, mem.addr_width, mem.data_width, mem.depth
        );
        for w in &mem.init {
            let _ = write!(s, " {w}");
        }
        let _ = writeln!(s);
    }
    for inst in &m.instances {
        let _ = write!(s, "  inst {} {}", inst.name, inst.module);
        for c in &inst.input_conns {
            let _ = write!(s, " n{}", c.0);
        }
        let _ = writeln!(s);
    }
    for (i, node) in m.nodes.iter().enumerate() {
        let w = m.node_widths[i];
        let body = match node {
            Node::Input(idx) => format!("input {idx}"),
            Node::Const(v) => format!("const {v}"),
            Node::RegQ(r) => format!("regq {}", r.index()),
            Node::MemReadData(mm, p) => format!("memread {} {p}", mm.index()),
            Node::InstOut(inst, o) => format!("instout {} {o}", inst.0),
            Node::Un(op, a) => format!("{} n{}", unop_name(*op), a.0),
            Node::Bin(op, a, b) => format!("{} n{} n{}", binop_name(*op), a.0, b.0),
            Node::Mux { sel, t, f } => format!("mux n{} n{} n{}", sel.0, t.0, f.0),
            Node::Slice { src, hi, lo } => format!("slice n{} {hi} {lo}", src.0),
            Node::Concat(a, b) => format!("concat n{} n{}", a.0, b.0),
            Node::Zext(a, tw) => format!("zext n{} {tw}", a.0),
            Node::Sext(a, tw) => format!("sext n{} {tw}", a.0),
        };
        let _ = writeln!(s, "  n{i} = {body} : {w}");
    }
    for (i, r) in m.regs.iter().enumerate() {
        if let Some(n) = r.next {
            let _ = writeln!(s, "  next {i} n{}", n.0);
        }
        if let Some(en) = r.en {
            let _ = writeln!(s, "  enable {i} n{}", en.0);
        }
    }
    for (i, mem) in m.mems.iter().enumerate() {
        for rp in &mem.read_ports {
            let _ = writeln!(s, "  readport {i} n{}", rp.addr.0);
        }
        for wp in &mem.write_ports {
            let _ = writeln!(s, "  write {i} n{} n{} n{}", wp.en.0, wp.addr.0, wp.data.0);
        }
    }
    for (i, d) in m.output_drivers.iter().enumerate() {
        let _ = writeln!(s, "  drive {i} n{}", d.0);
    }
    for (id, name) in {
        let mut names: Vec<_> = m.node_names.iter().collect();
        names.sort_by_key(|(id, _)| **id);
        names
    } {
        let _ = writeln!(s, "  name n{id} {name}");
    }
    let _ = writeln!(s, "end");
    s
}

/// Serializes a whole design (modules in order).
pub fn write_design(d: &Design) -> String {
    d.modules
        .iter()
        .map(write_module)
        .collect::<Vec<_>>()
        .join("\n")
}

struct Parser<'a> {
    lines: std::iter::Enumerate<std::str::Lines<'a>>,
}

fn perr(line: usize, message: impl Into<String>) -> RtlError {
    RtlError::Parse {
        line: line + 1,
        message: message.into(),
    }
}

fn parse_node_ref(line: usize, tok: &str) -> Result<NodeId, RtlError> {
    let id = tok
        .strip_prefix('n')
        .and_then(|s| s.parse::<u32>().ok())
        .ok_or_else(|| perr(line, format!("expected node reference, found {tok:?}")))?;
    Ok(NodeId(id))
}

fn parse_num<T: std::str::FromStr>(line: usize, tok: &str, what: &str) -> Result<T, RtlError> {
    tok.parse()
        .map_err(|_| perr(line, format!("invalid {what} {tok:?}")))
}

fn parse_bv(line: usize, tok: &str) -> Result<Bv, RtlError> {
    tok.parse::<Bv>()
        .map_err(|e| perr(line, format!("bad literal {tok:?}: {e}")))
}

impl<'a> Parser<'a> {
    fn parse_design(text: &'a str) -> Result<Design, RtlError> {
        let mut p = Parser {
            lines: text.lines().enumerate(),
        };
        let mut d = Design::new();
        while let Some((ln, raw)) = p.lines.next() {
            let line = strip_comment(raw);
            if line.is_empty() {
                continue;
            }
            let mut toks = line.split_whitespace();
            match toks.next() {
                Some("module") => {
                    let name = toks
                        .next()
                        .ok_or_else(|| perr(ln, "module needs a name"))?
                        .to_string();
                    let m = p.parse_module_body(name)?;
                    check_module(&m)?;
                    d.add_module(m);
                }
                Some(other) => return Err(perr(ln, format!("expected `module`, found {other:?}"))),
                None => unreachable!(),
            }
        }
        Ok(d)
    }

    fn parse_module_body(&mut self, name: String) -> Result<Module, RtlError> {
        let mut m = Module {
            name,
            ..Module::default()
        };
        for (ln, raw) in self.lines.by_ref() {
            let line = strip_comment(raw);
            if line.is_empty() {
                continue;
            }
            let mut t = line.split_whitespace();
            let kw = t.next().expect("nonempty");
            match kw {
                "end" => return Ok(m),
                "input" | "output" => {
                    let pname = t.next().ok_or_else(|| perr(ln, "port needs a name"))?;
                    let width: u32 = parse_num(ln, t.next().unwrap_or(""), "width")?;
                    let port = Port {
                        name: pname.to_string(),
                        width,
                    };
                    if kw == "input" {
                        m.inputs.push(port);
                    } else {
                        m.outputs.push(port);
                        m.output_drivers.push(NodeId(u32::MAX)); // patched by `drive`
                    }
                }
                "reg" => {
                    let rname = t.next().ok_or_else(|| perr(ln, "reg needs a name"))?;
                    let width: u32 = parse_num(ln, t.next().unwrap_or(""), "width")?;
                    let init = parse_bv(ln, t.next().unwrap_or(""))?;
                    m.regs.push(Reg {
                        name: rname.to_string(),
                        width,
                        init,
                        next: None,
                        en: None,
                    });
                }
                "mem" => {
                    let mname = t.next().ok_or_else(|| perr(ln, "mem needs a name"))?;
                    let addr_width: u32 = parse_num(ln, t.next().unwrap_or(""), "addr width")?;
                    let data_width: u32 = parse_num(ln, t.next().unwrap_or(""), "data width")?;
                    let depth: usize = parse_num(ln, t.next().unwrap_or(""), "depth")?;
                    let mut init = Vec::new();
                    for tok in t {
                        init.push(parse_bv(ln, tok)?);
                    }
                    m.mems.push(Mem {
                        name: mname.to_string(),
                        addr_width,
                        data_width,
                        depth,
                        init,
                        write_ports: Vec::new(),
                        read_ports: Vec::new(),
                    });
                }
                "inst" => {
                    let iname = t.next().ok_or_else(|| perr(ln, "inst needs a name"))?;
                    let module = t.next().ok_or_else(|| perr(ln, "inst needs a module"))?;
                    let mut conns = Vec::new();
                    for tok in t {
                        conns.push(parse_node_ref(ln, tok)?);
                    }
                    m.instances.push(Instance {
                        name: iname.to_string(),
                        module: module.to_string(),
                        input_conns: conns,
                    });
                }
                "next" => {
                    let idx: usize = parse_num(ln, t.next().unwrap_or(""), "reg index")?;
                    let node = parse_node_ref(ln, t.next().unwrap_or(""))?;
                    m.regs
                        .get_mut(idx)
                        .ok_or_else(|| perr(ln, "reg index out of range"))?
                        .next = Some(node);
                }
                "enable" => {
                    let idx: usize = parse_num(ln, t.next().unwrap_or(""), "reg index")?;
                    let node = parse_node_ref(ln, t.next().unwrap_or(""))?;
                    m.regs
                        .get_mut(idx)
                        .ok_or_else(|| perr(ln, "reg index out of range"))?
                        .en = Some(node);
                }
                "readport" => {
                    let idx: usize = parse_num(ln, t.next().unwrap_or(""), "mem index")?;
                    let addr = parse_node_ref(ln, t.next().unwrap_or(""))?;
                    m.mems
                        .get_mut(idx)
                        .ok_or_else(|| perr(ln, "mem index out of range"))?
                        .read_ports
                        .push(ReadPort { addr });
                }
                "write" => {
                    let idx: usize = parse_num(ln, t.next().unwrap_or(""), "mem index")?;
                    let en = parse_node_ref(ln, t.next().unwrap_or(""))?;
                    let addr = parse_node_ref(ln, t.next().unwrap_or(""))?;
                    let data = parse_node_ref(ln, t.next().unwrap_or(""))?;
                    m.mems
                        .get_mut(idx)
                        .ok_or_else(|| perr(ln, "mem index out of range"))?
                        .write_ports
                        .push(WritePort { en, addr, data });
                }
                "drive" => {
                    let idx: usize = parse_num(ln, t.next().unwrap_or(""), "output index")?;
                    let node = parse_node_ref(ln, t.next().unwrap_or(""))?;
                    if idx >= m.output_drivers.len() {
                        return Err(perr(ln, "output index out of range"));
                    }
                    m.output_drivers[idx] = node;
                }
                "name" => {
                    let node = parse_node_ref(ln, t.next().unwrap_or(""))?;
                    let name = t.next().ok_or_else(|| perr(ln, "name needs a value"))?;
                    m.node_names.insert(node.0, name.to_string());
                }
                tok if tok.starts_with('n') => {
                    // nK = <op> ... : <width>
                    let id = parse_node_ref(ln, tok)?;
                    if id.index() != m.nodes.len() {
                        return Err(perr(
                            ln,
                            format!(
                                "node ids must be dense and in order (expected n{})",
                                m.nodes.len()
                            ),
                        ));
                    }
                    if t.next() != Some("=") {
                        return Err(perr(ln, "expected `=` after node id"));
                    }
                    let rest: Vec<&str> = t.collect();
                    let colon = rest
                        .iter()
                        .rposition(|s| *s == ":")
                        .ok_or_else(|| perr(ln, "node line missing `: width`"))?;
                    let width: u32 =
                        parse_num(ln, rest.get(colon + 1).copied().unwrap_or(""), "width")?;
                    let node = self_parse_node(ln, &rest[..colon])?;
                    m.nodes.push(node);
                    m.node_widths.push(width);
                }
                other => return Err(perr(ln, format!("unknown keyword {other:?}"))),
            }
        }
        Err(perr(usize::MAX - 1, "missing `end`"))
    }
}

fn self_parse_node(ln: usize, toks: &[&str]) -> Result<Node, RtlError> {
    let op = *toks.first().ok_or_else(|| perr(ln, "empty node body"))?;
    let arg = |i: usize| -> &str { toks.get(i).copied().unwrap_or("") };
    let node = match op {
        "input" => Node::Input(parse_num(ln, arg(1), "input index")?),
        "const" => Node::Const(parse_bv(ln, arg(1))?),
        "regq" => Node::RegQ(RegId(parse_num(ln, arg(1), "reg index")?)),
        "memread" => Node::MemReadData(
            MemId(parse_num(ln, arg(1), "mem index")?),
            parse_num(ln, arg(2), "port index")?,
        ),
        "instout" => Node::InstOut(
            InstId(parse_num(ln, arg(1), "inst index")?),
            parse_num(ln, arg(2), "output index")?,
        ),
        "mux" => Node::Mux {
            sel: parse_node_ref(ln, arg(1))?,
            t: parse_node_ref(ln, arg(2))?,
            f: parse_node_ref(ln, arg(3))?,
        },
        "slice" => Node::Slice {
            src: parse_node_ref(ln, arg(1))?,
            hi: parse_num(ln, arg(2), "hi")?,
            lo: parse_num(ln, arg(3), "lo")?,
        },
        "concat" => Node::Concat(parse_node_ref(ln, arg(1))?, parse_node_ref(ln, arg(2))?),
        "zext" => Node::Zext(parse_node_ref(ln, arg(1))?, parse_num(ln, arg(2), "width")?),
        "sext" => Node::Sext(parse_node_ref(ln, arg(1))?, parse_num(ln, arg(2), "width")?),
        other => {
            if let Some(u) = unop_from(other) {
                Node::Un(u, parse_node_ref(ln, arg(1))?)
            } else if let Some(b) = binop_from(other) {
                Node::Bin(b, parse_node_ref(ln, arg(1))?, parse_node_ref(ln, arg(2))?)
            } else {
                return Err(perr(ln, format!("unknown node op {other:?}")));
            }
        }
    };
    Ok(node)
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(i) => line[..i].trim(),
        None => line.trim(),
    }
}

/// Parses a design from the text netlist format, validating every module.
///
/// # Errors
///
/// Returns [`RtlError::Parse`] with a line number on syntax errors, or any
/// structural check error.
pub fn parse_design(text: &str) -> Result<Design, RtlError> {
    Parser::parse_design(text)
}

/// Parses a single module (the first in the text).
///
/// # Errors
///
/// As [`parse_design`]; additionally errors if the text contains no module.
pub fn parse_module(text: &str) -> Result<Module, RtlError> {
    let d = parse_design(text)?;
    d.modules.into_iter().next().ok_or(RtlError::Parse {
        line: 1,
        message: "no module found".into(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;

    fn rich_module() -> Module {
        let mut b = ModuleBuilder::new("rich");
        let en = b.input("en", 1);
        let x = b.input("x", 8);
        let r = b.reg("acc", 16, Bv::from_u64(16, 7));
        let q = b.reg_q(r);
        let xw = b.zext(x, 16);
        let sum = b.add(q, xw);
        b.connect_reg(r, sum);
        b.reg_enable(r, en);
        let mem = b.mem("buf", 3, 8, 8);
        b.mem_init(mem, vec![Bv::from_u64(8, 0xAA)]);
        let addr = b.slice(x, 2, 0);
        let rd = b.mem_read(mem, addr);
        b.mem_write(mem, en, addr, x);
        let hi = b.slice(sum, 15, 8);
        let cat = b.concat(hi, rd);
        let neg = b.neg(cat);
        let sel = b.red_or(x);
        let muxed = b.mux(sel, cat, neg);
        b.name_node(muxed, "muxed");
        b.output("y", muxed);
        b.output("acc", q);
        b.finish().unwrap()
    }

    #[test]
    fn roundtrip_preserves_module() {
        let m = rich_module();
        let text = write_module(&m);
        let back = parse_module(&text).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn roundtrip_hierarchical_design() {
        let mut cb = ModuleBuilder::new("leaf");
        let a = cb.input("a", 4);
        let n = cb.not(a);
        cb.output("y", n);
        let leaf = cb.finish().unwrap();
        let mut tb = ModuleBuilder::new("top");
        let x = tb.input("x", 4);
        let o = tb.instantiate("u0", &leaf, &[x]);
        tb.output("y", o[0]);
        let top = tb.finish().unwrap();
        let mut d = Design::new();
        d.add_module(leaf);
        d.add_module(top);
        let text = write_design(&d);
        let back = parse_design(&text).unwrap();
        assert_eq!(back.modules.len(), 2);
        assert_eq!(back.module("top").unwrap(), d.module("top").unwrap());
        assert_eq!(back.module("leaf").unwrap(), d.module("leaf").unwrap());
    }

    #[test]
    fn parse_reports_line_numbers() {
        let text = "module m\n  input a 8\n  bogus line here\nend\n";
        match parse_design(text) {
            Err(RtlError::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn parse_rejects_out_of_order_nodes() {
        let text = "module m\n  input a 8\n  n5 = input 0 : 8\nend\n";
        assert!(matches!(parse_design(text), Err(RtlError::Parse { .. })));
    }

    #[test]
    fn parse_validates_structure() {
        // Output driver never set.
        let text = "module m\n  input a 8\n  output y 8\n  n0 = input 0 : 8\nend\n";
        assert!(parse_design(text).is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# a counter\nmodule m\n\n  input a 8 # the input\n  output y 8\n  n0 = input 0 : 8\n  drive 0 n0\nend\n";
        let d = parse_design(text).unwrap();
        assert_eq!(d.modules[0].name, "m");
    }
}
