//! Word-level rewriting: structural hashing (GVN), constant folding, and
//! identity rules over a [`Module`]'s combinational DAG.
//!
//! [`optimize`] is the front half of the SAT-sweeping equivalence flow in
//! `dfv-sec`: it shrinks a module *before* bit-blasting so the CNF the
//! solver sees never contains work a word-level rewrite could have
//! discharged. The pass is purely structural — it never touches ports,
//! registers, or memories (all are kept, by name), so counterexample
//! extraction and replay against the original module still line up — and
//! it returns a deterministic old→new node map so traces and the
//! divergence localizer can name original signals.
//!
//! Three rule families run in one forward pass over the (already
//! topological) node vector, followed by dead-code elimination:
//!
//! 1. **Constant folding** — a node whose operands all rewrote to
//!    constants is evaluated through the same [`eval_bin`]/[`eval_un`]
//!    oracle the simulator uses, so folding can never disagree with
//!    execution semantics.
//! 2. **Identity / absorption rules** — `x & 0`, `x | !0`, `x ^ x`,
//!    `x * 1`, `mux(c, a, a)`, shift-by-const chains, slice-of-slice,
//!    double negation, and friends. Every rule preserves the node's
//!    width.
//! 3. **Structural hashing (GVN)** — after rewriting, a node is interned
//!    by its canonical key; commutative operators sort their operands
//!    first, so `a * b` and `b * a` intern to the same value number.
//!
//! Rules see operands *after* their own rewrites (the forward pass maps
//! operands first), so chains like `(x << 3) << 2` fold even when the
//! inner shift was itself produced by a rewrite.

use std::collections::HashMap;

use dfv_bits::Bv;

use crate::check::check_module;
use crate::ir::{BinOp, Module, Node, NodeId, UnOp};
use crate::sim::{eval_bin, eval_un};

/// Counters describing what [`optimize`] did — deterministic for a given
/// input module, so they can land in canonical reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Combinational nodes before the pass.
    pub nodes_before: u64,
    /// Combinational nodes after GVN + DCE.
    pub nodes_after: u64,
    /// Nodes discharged by constant folding.
    pub folded: u64,
    /// Nodes discharged by an identity/absorption rewrite.
    pub rewritten: u64,
    /// Nodes merged into an existing value number by structural hashing.
    pub gvn_merged: u64,
    /// Live-but-duplicate nodes removed by the final dead-code sweep.
    pub dce_removed: u64,
}

/// Canonical GVN key of a rewritten node. Commutative binary operators
/// are keyed with sorted operands so operand order cannot split a value
/// class.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Key {
    Input(usize),
    Const(u32, Vec<u64>),
    RegQ(usize),
    MemReadData(usize, usize),
    InstOut(usize, usize),
    Un(UnOp, u32),
    Bin(BinOp, u32, u32),
    Mux(u32, u32, u32),
    Slice(u32, u32, u32),
    Concat(u32, u32),
    Zext(u32, u32),
    Sext(u32, u32),
}

/// The in-progress rewritten module: nodes, widths, and the GVN table.
struct Builder {
    nodes: Vec<Node>,
    widths: Vec<u32>,
    /// Rewritten constant value per new node (`None` for non-constants).
    consts: Vec<Option<Bv>>,
    table: HashMap<Key, NodeId>,
}

impl Builder {
    fn key_of(&self, node: &Node) -> Key {
        match node {
            Node::Input(i) => Key::Input(*i),
            Node::Const(v) => Key::Const(v.width(), v.limbs().to_vec()),
            Node::RegQ(r) => Key::RegQ(r.index()),
            Node::MemReadData(m, p) => Key::MemReadData(m.index(), *p),
            Node::InstOut(i, o) => Key::InstOut(i.0 as usize, *o),
            Node::Un(op, a) => Key::Un(*op, a.index() as u32),
            Node::Bin(op, a, b) => {
                let (x, y) = (a.index() as u32, b.index() as u32);
                if commutes(*op) && y < x {
                    Key::Bin(*op, y, x)
                } else {
                    Key::Bin(*op, x, y)
                }
            }
            Node::Mux { sel, t, f } => {
                Key::Mux(sel.index() as u32, t.index() as u32, f.index() as u32)
            }
            Node::Slice { src, hi, lo } => Key::Slice(src.index() as u32, *hi, *lo),
            Node::Concat(h, l) => Key::Concat(h.index() as u32, l.index() as u32),
            Node::Zext(a, w) => Key::Zext(a.index() as u32, *w),
            Node::Sext(a, w) => Key::Sext(a.index() as u32, *w),
        }
    }

    /// Interns `node` (which must reference only already-interned nodes),
    /// returning the existing value number on a GVN hit.
    fn intern(&mut self, node: Node, width: u32, stats: &mut OptStats) -> NodeId {
        let key = self.key_of(&node);
        if let Some(&id) = self.table.get(&key) {
            stats.gvn_merged += 1;
            return id;
        }
        let id = NodeId(self.nodes.len() as u32);
        let cv = match &node {
            Node::Const(v) => Some(v.clone()),
            _ => None,
        };
        self.nodes.push(node);
        self.widths.push(width);
        self.consts.push(cv);
        self.table.insert(key, id);
        id
    }

    fn intern_const(&mut self, v: Bv, stats: &mut OptStats) -> NodeId {
        let w = v.width();
        self.intern(Node::Const(v), w, stats)
    }

    /// The constant value of an interned node, if it is one.
    fn const_of(&self, id: NodeId) -> Option<&Bv> {
        self.consts[id.index()].as_ref()
    }
}

fn commutes(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Eq | BinOp::Ne
    )
}

/// Rewrites `module` and returns the optimized module, the old→new node
/// map (`None` for nodes removed as dead), and the pass counters.
///
/// The optimized module has the same ports, registers (by name, width,
/// init, enable), memories, and instances as the input; only the
/// combinational DAG between them shrinks. Every map entry that is
/// `Some(n)` points at a node computing the same value as the old node
/// under all inputs/register/memory states — the soundness granted by
/// folding through the simulator's own evaluation oracle and by
/// width-preserving identities.
///
/// # Panics
///
/// Panics if the rewritten module fails structural validation — that
/// would be a bug in this pass, never a property of the input.
pub fn optimize(module: &Module) -> (Module, Vec<Option<NodeId>>, OptStats) {
    let mut stats = OptStats {
        nodes_before: module.nodes.len() as u64,
        ..OptStats::default()
    };
    let mut b = Builder {
        nodes: Vec::with_capacity(module.nodes.len()),
        widths: Vec::with_capacity(module.nodes.len()),
        consts: Vec::with_capacity(module.nodes.len()),
        table: HashMap::new(),
    };
    // Forward rewrite: every old node gets a value number over the new
    // node vector. Operands are looked up through `map`, so rules see
    // already-rewritten operands.
    let mut map: Vec<NodeId> = Vec::with_capacity(module.nodes.len());
    for (i, node) in module.nodes.iter().enumerate() {
        let width = module.node_widths[i];
        let id = rewrite(&mut b, node, width, &map, &mut stats);
        debug_assert_eq!(b.widths[id.index()], width, "rewrite changed a width");
        map.push(id);
    }

    // Dead-code sweep. Roots are everything the sequential frame reads:
    // output drivers, register D/enable inputs, memory port wires, and
    // instance connections. Registers and memories themselves are always
    // kept so name-based extraction still lines up.
    let mut live = vec![false; b.nodes.len()];
    let mut work: Vec<NodeId> = Vec::new();
    let root = |n: NodeId, work: &mut Vec<NodeId>| work.push(map[n.index()]);
    for &d in &module.output_drivers {
        root(d, &mut work);
    }
    for r in &module.regs {
        if let Some(n) = r.next {
            root(n, &mut work);
        }
        if let Some(n) = r.en {
            root(n, &mut work);
        }
    }
    for m in &module.mems {
        for wp in &m.write_ports {
            root(wp.en, &mut work);
            root(wp.addr, &mut work);
            root(wp.data, &mut work);
        }
        for rp in &m.read_ports {
            root(rp.addr, &mut work);
        }
    }
    for inst in &module.instances {
        for &n in &inst.input_conns {
            root(n, &mut work);
        }
    }
    while let Some(n) = work.pop() {
        if std::mem::replace(&mut live[n.index()], true) {
            continue;
        }
        for_each_operand(&b.nodes[n.index()], |o| work.push(o));
    }

    // Compact live nodes, preserving topological order.
    let mut compact: Vec<Option<NodeId>> = vec![None; b.nodes.len()];
    let mut out = Module {
        name: module.name.clone(),
        inputs: module.inputs.clone(),
        outputs: module.outputs.clone(),
        output_drivers: Vec::with_capacity(module.output_drivers.len()),
        nodes: Vec::new(),
        node_widths: Vec::new(),
        node_names: HashMap::new(),
        regs: module.regs.clone(),
        mems: module.mems.clone(),
        instances: module.instances.clone(),
    };
    for (i, node) in b.nodes.iter().enumerate() {
        if !live[i] {
            stats.dce_removed += 1;
            continue;
        }
        let id = NodeId(out.nodes.len() as u32);
        let mut n = node.clone();
        remap_operands(&mut n, &compact);
        out.nodes.push(n);
        out.node_widths.push(b.widths[i]);
        compact[i] = Some(id);
    }
    let final_map: Vec<Option<NodeId>> = map.iter().map(|&n| compact[n.index()]).collect();
    // Debug names follow the map; the first old node to land on a new
    // node names it (old-index order, so the choice is deterministic).
    for (i, mapped) in final_map.iter().enumerate() {
        if let (Some(name), Some(new)) = (module.node_names.get(&(i as u32)), mapped) {
            out.node_names
                .entry(new.index() as u32)
                .or_insert_with(|| name.clone());
        }
    }
    let fix = |n: NodeId| compact[map[n.index()].index()].expect("root node survives DCE");
    out.output_drivers = module.output_drivers.iter().map(|&d| fix(d)).collect();
    for r in &mut out.regs {
        r.next = r.next.map(fix);
        r.en = r.en.map(fix);
    }
    for m in &mut out.mems {
        for wp in &mut m.write_ports {
            wp.en = fix(wp.en);
            wp.addr = fix(wp.addr);
            wp.data = fix(wp.data);
        }
        for rp in &mut m.read_ports {
            rp.addr = fix(rp.addr);
        }
    }
    for inst in &mut out.instances {
        for n in &mut inst.input_conns {
            *n = fix(*n);
        }
    }
    stats.nodes_after = out.nodes.len() as u64;
    check_module(&out).expect("optimize produced a structurally valid module");
    (out, final_map, stats)
}

fn for_each_operand(node: &Node, mut f: impl FnMut(NodeId)) {
    match node {
        Node::Input(_)
        | Node::Const(_)
        | Node::RegQ(_)
        | Node::MemReadData(..)
        | Node::InstOut(..) => {}
        Node::Un(_, a) | Node::Zext(a, _) | Node::Sext(a, _) | Node::Slice { src: a, .. } => f(*a),
        Node::Bin(_, a, b) | Node::Concat(a, b) => {
            f(*a);
            f(*b);
        }
        Node::Mux { sel, t, f: fv } => {
            f(*sel);
            f(*t);
            f(*fv);
        }
    }
}

fn remap_operands(node: &mut Node, compact: &[Option<NodeId>]) {
    let m = |n: &mut NodeId| *n = compact[n.index()].expect("operand of a live node is live");
    match node {
        Node::Input(_)
        | Node::Const(_)
        | Node::RegQ(_)
        | Node::MemReadData(..)
        | Node::InstOut(..) => {}
        Node::Un(_, a) | Node::Zext(a, _) | Node::Sext(a, _) | Node::Slice { src: a, .. } => m(a),
        Node::Bin(_, a, b) | Node::Concat(a, b) => {
            m(a);
            m(b);
        }
        Node::Mux { sel, t, f } => {
            m(sel);
            m(t);
            m(f);
        }
    }
}

/// Rewrites one old node over already-interned operands and interns the
/// result. `width` is the old node's width; every returned node has it.
fn rewrite(
    b: &mut Builder,
    node: &Node,
    width: u32,
    map: &[NodeId],
    stats: &mut OptStats,
) -> NodeId {
    match node {
        Node::Input(_)
        | Node::Const(_)
        | Node::RegQ(_)
        | Node::MemReadData(..)
        | Node::InstOut(..) => b.intern(node.clone(), width, stats),
        Node::Un(op, a) => {
            let a = map[a.index()];
            if let Some(v) = b.const_of(a) {
                stats.folded += 1;
                let folded = eval_un(*op, v);
                return b.intern_const(folded, stats);
            }
            match (op, &b.nodes[a.index()]) {
                // !!x and --x cancel.
                (UnOp::Not, Node::Un(UnOp::Not, x)) | (UnOp::Neg, Node::Un(UnOp::Neg, x)) => {
                    stats.rewritten += 1;
                    *x
                }
                // Reductions of a 1-bit value are the value itself.
                (UnOp::RedAnd | UnOp::RedOr | UnOp::RedXor, _) if b.widths[a.index()] == 1 => {
                    stats.rewritten += 1;
                    a
                }
                _ => b.intern(Node::Un(*op, a), width, stats),
            }
        }
        Node::Bin(op, a, bb) => {
            let (a, bn) = (map[a.index()], map[bb.index()]);
            if let (Some(va), Some(vb)) = (b.const_of(a), b.const_of(bn)) {
                stats.folded += 1;
                let folded = eval_bin(*op, va, vb);
                return b.intern_const(folded, stats);
            }
            if let Some(id) = bin_identity(b, *op, a, bn, width, stats) {
                return id;
            }
            // Store commutative operands in canonical (sorted) order, not
            // just in the GVN key: two *different* modules optimized
            // independently then encode `a*b` and `b*a` through identical
            // gate-call sequences, so the bit-blaster's structural caches
            // collapse the pair without any SAT effort.
            let (a, bn) = if commutes(*op) && bn.index() < a.index() {
                (bn, a)
            } else {
                (a, bn)
            };
            b.intern(Node::Bin(*op, a, bn), width, stats)
        }
        Node::Mux { sel, t, f } => {
            let (s, mut t, mut f) = (map[sel.index()], map[t.index()], map[f.index()]);
            if let Some(v) = b.const_of(s) {
                stats.rewritten += 1;
                return if v.bit(0) { t } else { f };
            }
            // mux(s, mux(s, a, _), c) = mux(s, a, c) and its dual.
            if let Node::Mux { sel: s2, t: t2, .. } = b.nodes[t.index()] {
                if s2 == s {
                    stats.rewritten += 1;
                    t = t2;
                }
            }
            if let Node::Mux { sel: s2, f: f2, .. } = b.nodes[f.index()] {
                if s2 == s {
                    stats.rewritten += 1;
                    f = f2;
                }
            }
            if t == f {
                stats.rewritten += 1;
                return t;
            }
            b.intern(Node::Mux { sel: s, t, f }, width, stats)
        }
        Node::Slice { src, hi, lo } => {
            let (mut src, mut hi, mut lo) = (map[src.index()], *hi, *lo);
            if let Some(v) = b.const_of(src) {
                stats.folded += 1;
                let folded = v.slice(hi, lo);
                return b.intern_const(folded, stats);
            }
            // Slice-of-slice composes; slice-of-concat narrows to one arm
            // when the range stays inside it. Loop: each step strictly
            // shrinks the source node index, so this terminates.
            loop {
                match &b.nodes[src.index()] {
                    Node::Slice {
                        src: inner,
                        lo: ilo,
                        ..
                    } => {
                        stats.rewritten += 1;
                        (src, hi, lo) = (*inner, hi + ilo, lo + ilo);
                    }
                    Node::Concat(h, l) => {
                        let wl = b.widths[l.index()];
                        if hi < wl {
                            stats.rewritten += 1;
                            src = *l;
                        } else if lo >= wl {
                            stats.rewritten += 1;
                            (src, hi, lo) = (*h, hi - wl, lo - wl);
                        } else {
                            break;
                        }
                    }
                    _ => break,
                }
            }
            if lo == 0 && hi + 1 == b.widths[src.index()] {
                stats.rewritten += 1;
                return src;
            }
            b.intern(Node::Slice { src, hi, lo }, width, stats)
        }
        Node::Concat(h, l) => {
            let (h, l) = (map[h.index()], map[l.index()]);
            if let (Some(vh), Some(vl)) = (b.const_of(h), b.const_of(l)) {
                stats.folded += 1;
                let folded = vh.concat(vl);
                return b.intern_const(folded, stats);
            }
            // {0, x} is a zero-extension — canonicalize so GVN can merge
            // it with explicitly-built zexts.
            if let Some(vh) = b.const_of(h) {
                if vh.is_zero() {
                    stats.rewritten += 1;
                    return b.intern(Node::Zext(l, width), width, stats);
                }
            }
            b.intern(Node::Concat(h, l), width, stats)
        }
        Node::Zext(a, w) => {
            let a = map[a.index()];
            if let Some(v) = b.const_of(a) {
                stats.folded += 1;
                let folded = v.zext(*w);
                return b.intern_const(folded, stats);
            }
            if b.widths[a.index()] == *w {
                stats.rewritten += 1;
                return a;
            }
            if let Node::Zext(inner, _) = b.nodes[a.index()] {
                stats.rewritten += 1;
                return b.intern(Node::Zext(inner, *w), width, stats);
            }
            b.intern(Node::Zext(a, *w), width, stats)
        }
        Node::Sext(a, w) => {
            let a = map[a.index()];
            if let Some(v) = b.const_of(a) {
                stats.folded += 1;
                let folded = v.sext(*w);
                return b.intern_const(folded, stats);
            }
            if b.widths[a.index()] == *w {
                stats.rewritten += 1;
                return a;
            }
            b.intern(Node::Sext(a, *w), width, stats)
        }
    }
}

/// Identity and absorption rules for binary operators. Returns `None`
/// when no rule applies; every returned node has width `width`.
fn bin_identity(
    b: &mut Builder,
    op: BinOp,
    a: NodeId,
    bn: NodeId,
    width: u32,
    stats: &mut OptStats,
) -> Option<NodeId> {
    let ca = b.const_of(a).cloned();
    let cb = b.const_of(bn).cloned();
    let hit = |stats: &mut OptStats, id: NodeId| {
        stats.rewritten += 1;
        Some(id)
    };
    let zero = |b: &mut Builder, stats: &mut OptStats| {
        stats.rewritten += 1;
        Some(b.intern_const(Bv::zero(width), stats))
    };
    let ones = |b: &mut Builder, stats: &mut OptStats| {
        stats.rewritten += 1;
        Some(b.intern_const(Bv::ones(width), stats))
    };
    let truth = |b: &mut Builder, stats: &mut OptStats, v: bool| {
        stats.rewritten += 1;
        Some(b.intern_const(Bv::from_bool(v), stats))
    };
    match op {
        BinOp::And => {
            if ca.as_ref().is_some_and(Bv::is_zero) || cb.as_ref().is_some_and(Bv::is_zero) {
                return zero(b, stats);
            }
            if ca.as_ref().is_some_and(Bv::is_ones) {
                return hit(stats, bn);
            }
            if cb.as_ref().is_some_and(Bv::is_ones) || a == bn {
                return hit(stats, a);
            }
        }
        BinOp::Or => {
            if ca.as_ref().is_some_and(Bv::is_ones) || cb.as_ref().is_some_and(Bv::is_ones) {
                return ones(b, stats);
            }
            if ca.as_ref().is_some_and(Bv::is_zero) {
                return hit(stats, bn);
            }
            if cb.as_ref().is_some_and(Bv::is_zero) || a == bn {
                return hit(stats, a);
            }
        }
        BinOp::Xor => {
            if a == bn {
                return zero(b, stats);
            }
            if ca.as_ref().is_some_and(Bv::is_zero) {
                return hit(stats, bn);
            }
            if cb.as_ref().is_some_and(Bv::is_zero) {
                return hit(stats, a);
            }
        }
        BinOp::Add => {
            if ca.as_ref().is_some_and(Bv::is_zero) {
                return hit(stats, bn);
            }
            if cb.as_ref().is_some_and(Bv::is_zero) {
                return hit(stats, a);
            }
        }
        BinOp::Sub => {
            if a == bn {
                return zero(b, stats);
            }
            if cb.as_ref().is_some_and(Bv::is_zero) {
                return hit(stats, a);
            }
        }
        BinOp::Mul => {
            if ca.as_ref().is_some_and(Bv::is_zero) || cb.as_ref().is_some_and(Bv::is_zero) {
                return zero(b, stats);
            }
            if ca.as_ref().is_some_and(|v| v.try_to_u64() == Some(1)) {
                return hit(stats, bn);
            }
            if cb.as_ref().is_some_and(|v| v.try_to_u64() == Some(1)) {
                return hit(stats, a);
            }
        }
        BinOp::Shl | BinOp::LShr | BinOp::AShr => {
            if let Some(amt) = cb.as_ref().and_then(Bv::try_to_u64) {
                if amt == 0 {
                    return hit(stats, a);
                }
                // Shift-by-const chains: (x >> c1) >> c2 = x >> (c1+c2),
                // saturating at the word width (logical shifts vanish;
                // an arithmetic shift by >= w equals one by w).
                if let Node::Bin(iop, x, ic) = b.nodes[a.index()] {
                    if iop == op {
                        if let Some(inner) = b.const_of(ic).and_then(Bv::try_to_u64) {
                            stats.rewritten += 1;
                            let total = inner.saturating_add(amt).min(width as u64 + 1);
                            if total >= width as u64 && matches!(op, BinOp::Shl | BinOp::LShr) {
                                return zero(b, stats);
                            }
                            let amount = b.intern_const(Bv::from_u64(32, total), stats);
                            return Some(b.intern(Node::Bin(op, x, amount), width, stats));
                        }
                    }
                }
            }
        }
        BinOp::Eq | BinOp::ULe | BinOp::SLe => {
            if a == bn {
                return truth(b, stats, true);
            }
        }
        BinOp::Ne | BinOp::ULt | BinOp::SLt => {
            if a == bn {
                return truth(b, stats, false);
            }
        }
        BinOp::UDiv | BinOp::URem | BinOp::SDiv | BinOp::SRem => {
            if cb.as_ref().is_some_and(|v| v.try_to_u64() == Some(1)) {
                return match op {
                    BinOp::UDiv | BinOp::SDiv => hit(stats, a),
                    _ => zero(b, stats),
                };
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::sim::Simulator;
    use dfv_bits::SplitMix64;

    /// The optimized module computes the same outputs as the original
    /// under random stimulus (both combinational).
    fn assert_comb_equiv(orig: &Module, opt: &Module, seed: u64) {
        let mut rng = SplitMix64::new(seed);
        let mut s1 = Simulator::new_reference(orig.clone()).unwrap();
        let mut s2 = Simulator::new_reference(opt.clone()).unwrap();
        for _ in 0..64 {
            for p in orig.inputs.clone() {
                let v = Bv::from_u64(64.min(p.width), rng.next_u64()).resize_zext(p.width);
                s1.poke(&p.name, v.clone());
                s2.poke(&p.name, v);
            }
            s1.eval();
            s2.eval();
            for o in &orig.outputs {
                assert_eq!(s1.output(&o.name), s2.output(&o.name), "output {}", o.name);
            }
        }
    }

    #[test]
    fn commutative_gvn_merges_mul_operand_orders() {
        let mut b = ModuleBuilder::new("comm");
        let a = b.input("a", 16);
        let x = b.input("x", 16);
        let p = b.mul(a, x);
        let q = b.mul(x, a);
        let d = b.xor(p, q);
        b.output("d", d);
        let m = b.finish().unwrap();
        let (opt, map, stats) = optimize(&m);
        // Both products intern to one value number, so the xor folds to 0.
        assert!(stats.gvn_merged >= 1);
        let dn = opt.output_drivers[0];
        assert_eq!(opt.nodes[dn.index()], Node::Const(Bv::zero(16)));
        assert_eq!(map.len(), m.nodes.len());
        assert_comb_equiv(&m, &opt, 0x1);
    }

    #[test]
    fn constant_folding_and_identities() {
        let mut b = ModuleBuilder::new("ids");
        let x = b.input("x", 8);
        let zero = b.constant(Bv::zero(8));
        let ones = b.constant(Bv::ones(8));
        let t1 = b.and(x, zero); // 0
        let t2 = b.or(x, ones); // ones
        let t3 = b.xor(x, zero); // x
        let c = b.input("c", 1);
        let t4 = b.mux(c, x, x); // x
        let sum = b.add(t1, t2); // ones
        let both = b.xor(t3, t4); // 0
        let y = b.or(sum, both); // ones
        b.output("y", y);
        let k1 = b.constant(Bv::from_u64(4, 3));
        let k2 = b.constant(Bv::from_u64(4, 2));
        let s1 = b.shl(x, k1);
        let s2 = b.shl(s1, k2); // x << 5
        b.output("s", s2);
        let m = b.finish().unwrap();
        let (opt, _, stats) = optimize(&m);
        assert!(stats.rewritten >= 5, "stats: {stats:?}");
        let y = opt.output_drivers[m.output_index("y").unwrap()];
        assert_eq!(opt.nodes[y.index()], Node::Const(Bv::ones(8)));
        assert_comb_equiv(&m, &opt, 0x2);
    }

    #[test]
    fn slice_and_extension_rules() {
        let mut b = ModuleBuilder::new("slices");
        let x = b.input("x", 8);
        let y = b.input("y", 8);
        let cat = b.concat(x, y);
        let lo = b.slice(cat, 7, 0); // = y
        let hi = b.slice(cat, 15, 8); // = x
        let again = b.slice(cat, 11, 4); // stays a slice of cat
        let zx = b.zext(x, 8); // = x
        let d1 = b.xor(lo, y); // 0
        let d2 = b.xor(hi, zx); // 0
        let out = b.concat(d1, d2);
        b.output("o", out);
        b.output("m", again);
        let m = b.finish().unwrap();
        let (opt, _, _) = optimize(&m);
        let o = opt.output_drivers[m.output_index("o").unwrap()];
        assert_eq!(opt.nodes[o.index()], Node::Const(Bv::zero(16)));
        assert_comb_equiv(&m, &opt, 0x3);
    }

    #[test]
    fn registers_and_memories_survive_with_names() {
        let mut b = ModuleBuilder::new("seq");
        let en = b.input("en", 1);
        let d = b.input("d", 8);
        let r = b.reg("state", 8, Bv::zero(8));
        let q = b.reg_q(r);
        let zero = b.constant(Bv::zero(8));
        let sum = b.add(q, d);
        let sum2 = b.add(sum, zero); // identity: collapses onto sum
        b.connect_reg(r, sum2);
        b.reg_enable(r, en);
        b.output("q", q);
        let m = b.finish().unwrap();
        let (opt, map, stats) = optimize(&m);
        assert_eq!(opt.regs.len(), 1);
        assert_eq!(opt.regs[0].name, "state");
        assert!(stats.nodes_after < stats.nodes_before);
        // Sequential behavior is preserved.
        let mut s1 = Simulator::new(m.clone()).unwrap();
        let mut s2 = Simulator::new(opt).unwrap();
        for i in 0..8u64 {
            let stim = [
                ("en", Bv::from_bool(i % 3 != 0)),
                ("d", Bv::from_u64(8, i * 17)),
            ];
            s1.step_with(&stim);
            s2.step_with(&stim);
            assert_eq!(s1.output("q"), s2.output("q"));
        }
        assert_eq!(map.len(), m.nodes.len());
    }

    #[test]
    fn node_map_points_at_equal_values() {
        let mut b = ModuleBuilder::new("map");
        let x = b.input("x", 8);
        let zero = b.constant(Bv::zero(8));
        let t = b.add(x, zero);
        b.name_node(t, "t");
        b.output("y", t);
        let m = b.finish().unwrap();
        let (opt, map, _) = optimize(&m);
        // `t` collapsed onto `x`'s input node; the map says so and the
        // debug name followed it.
        let new_t = map[t.index()].expect("live node maps");
        assert_eq!(opt.nodes[new_t.index()], Node::Input(0));
        assert_eq!(opt.node_named("t"), Some(new_t));
    }

    #[test]
    fn random_modules_stay_equivalent() {
        // Fuzz: random expression DAGs, optimized, compared on random
        // stimulus. Division included — fold rules must match the oracle.
        for seed in 0..24u64 {
            let mut rng = SplitMix64::new(0xDF50A + seed);
            let mut b = ModuleBuilder::new("fuzz");
            let mut pool = vec![b.input("a", 8), b.input("b", 8), b.input("c", 8)];
            let sel = b.input("s", 1);
            for k in 0..24 {
                let i = pool[rng.below(pool.len() as u64) as usize];
                let j = pool[rng.below(pool.len() as u64) as usize];
                let n = match rng.below(12) {
                    0 => b.add(i, j),
                    1 => b.sub(i, j),
                    2 => b.mul(i, j),
                    3 => b.and(i, j),
                    4 => b.or(i, j),
                    5 => b.xor(i, j),
                    6 => b.mux(sel, i, j),
                    7 => b.not(i),
                    8 => {
                        let c = b.constant(Bv::from_u64(8, rng.next_u64()));
                        b.add(i, c)
                    }
                    9 => b.udiv(i, j),
                    10 => b.urem(i, j),
                    _ => {
                        let s = b.slice(i, 3 + (k % 4), 0);
                        b.zext(s, 8)
                    }
                };
                pool.push(n);
            }
            let out = *pool.last().unwrap();
            b.output("y", out);
            let m = b.finish().unwrap();
            let (opt, map, _) = optimize(&m);
            assert!(map.iter().filter(|e| e.is_some()).count() >= 1);
            assert_comb_equiv(&m, &opt, seed);
        }
    }
}
