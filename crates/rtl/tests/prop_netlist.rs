//! Fuzz: netlist serialization must round-trip arbitrary (comb + state)
//! modules exactly, and the simulator must behave identically on the
//! round-tripped module.
// Gated: property-based tests depend on the external `proptest` crate,
// which offline builds cannot fetch. Enable with `--features proptest-tests`
// in an environment that can resolve crates.io dependencies.
#![cfg(feature = "proptest-tests")]

use dfv_bits::Bv;
use dfv_rtl::{parse_module, write_module, Module, ModuleBuilder, Simulator};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Recipe {
    widths: Vec<u32>,
    ops: Vec<(u8, usize, usize)>,
    regs: Vec<(usize, u64, bool)>, // (driver idx, init seed, has enable)
    mem: Option<(u32, usize)>,     // (addr width, depth)
}

fn recipe() -> impl Strategy<Value = Recipe> {
    (
        proptest::collection::vec(1u32..10, 2..4),
        proptest::collection::vec((0u8..8, any::<usize>(), any::<usize>()), 2..12),
        proptest::collection::vec((any::<usize>(), any::<u64>(), any::<bool>()), 0..3),
        proptest::option::of((2u32..4, 3usize..8)),
    )
        .prop_map(|(widths, ops, regs, mem)| Recipe {
            widths,
            ops,
            regs,
            mem,
        })
}

fn build(r: &Recipe) -> Module {
    let mut b = ModuleBuilder::new("fuzz");
    let mut nodes = Vec::new();
    for (i, w) in r.widths.iter().enumerate() {
        nodes.push(b.input(format!("i{i}"), *w));
    }
    for (sel, xi, yi) in &r.ops {
        let x = nodes[xi % nodes.len()];
        let y = nodes[yi % nodes.len()];
        let w = b.node_width(x);
        let yr = b.resize_zext(y, w);
        let n = match sel % 8 {
            0 => b.add(x, yr),
            1 => b.xor(x, yr),
            2 => b.mul(x, yr),
            3 => b.not(x),
            4 => {
                let s = b.red_or(y);
                b.mux(s, x, yr)
            }
            5 => b.concat(x, y),
            6 => b.sext(x, w + 2),
            7 => b.eq(x, yr),
            _ => unreachable!(),
        };
        let n = if b.node_width(n) > 24 {
            b.trunc(n, 24)
        } else {
            n
        };
        nodes.push(n);
    }
    for (k, (di, seed, has_en)) in r.regs.iter().enumerate() {
        let d = nodes[di % nodes.len()];
        let w = b.node_width(d);
        let reg = b.reg(format!("r{k}"), w, Bv::from_u64(w, *seed));
        b.connect_reg(reg, d);
        if *has_en {
            let en = b.red_or(nodes[k % nodes.len()]);
            b.reg_enable(reg, en);
        }
        nodes.push(b.reg_q(reg));
    }
    if let Some((aw, depth)) = r.mem {
        let depth = depth.min(1 << aw);
        let m = b.mem("m", aw, 8, depth);
        let addr_src = nodes[0];
        let addr = b.resize_zext(addr_src, aw);
        let data_src = *nodes.last().unwrap();
        let data = b.resize_zext(data_src, 8);
        let we = b.red_or(nodes[1 % nodes.len()]);
        b.mem_write(m, we, addr, data);
        let rd = b.mem_read(m, addr);
        nodes.push(rd);
    }
    b.output("out", *nodes.last().unwrap());
    b.finish().expect("fuzz module valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn netlist_roundtrip_exact(r in recipe()) {
        let m = build(&r);
        let text = write_module(&m);
        let back = parse_module(&text).unwrap();
        prop_assert_eq!(&back, &m);
        // Idempotent: serializing again yields the same text.
        prop_assert_eq!(write_module(&back), text);
    }

    #[test]
    fn roundtripped_module_simulates_identically(r in recipe(), seeds in proptest::collection::vec(any::<u64>(), 6)) {
        let m = build(&r);
        let back = parse_module(&write_module(&m)).unwrap();
        let mut sim_a = Simulator::new(m).unwrap();
        let mut sim_b = Simulator::new(back).unwrap();
        for step in 0..6 {
            let inputs: Vec<(String, Bv)> = sim_a
                .module()
                .inputs
                .iter()
                .enumerate()
                .map(|(i, p)| {
                    (
                        p.name.clone(),
                        Bv::from_u64(p.width, seeds[(i + step) % seeds.len()]),
                    )
                })
                .collect();
            for (n, v) in &inputs {
                sim_a.poke(n, v.clone());
                sim_b.poke(n, v.clone());
            }
            prop_assert_eq!(sim_a.output("out"), sim_b.output("out"), "step {}", step);
            sim_a.step();
            sim_b.step();
        }
    }
}
